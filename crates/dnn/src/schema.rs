//! The external model format: `bitfusion-model/1`.
//!
//! Models are first-class data, not code. A model document is a single
//! JSON object
//!
//! ```json
//! {"format":"bitfusion-model/1","name":"...","layers":[...]}
//! ```
//!
//! with one object per layer (`{"name":...,"kind":...,<shape fields>}`)
//! and an optional top-level `"quant"` — a [`QuantSpec`] compact spelling
//! applied to the layers at load time. Parsing follows the service
//! protocol's discipline:
//!
//! * **strict** — unknown top-level fields, layer fields, and layer kinds
//!   are rejected by name, with diagnostics that locate the offense
//!   (`layers[3].kind: unknown layer kind "conv3d"`), never silently
//!   defaulted;
//! * **deterministic** — [`export_model`] emits fields in a fixed order
//!   through the shared deterministic encoder
//!   ([`bitfusion_core::json`]), so `export ∘ parse ∘ export` is a fixed
//!   point, and a model that came *from* an export re-parses to exactly
//!   the [`Model`] it was exported from (precision spellings are
//!   canonical via [`PairPrecision::from_bits`]);
//! * **validated** — shapes that would be geometrically impossible
//!   (zero-size kernels or strides, a window larger than the padded
//!   input) are parse errors, so anything that parses also compiles
//!   shape-consistently or fails for model-content reasons the
//!   simulator reports itself.
//!
//! Layer kinds and their fields (all dimensions are positive integers;
//! `(a, b)` pairs are two-element JSON arrays; precisions are compact
//! `"input/weight"` bit spellings like `"4/1"`):
//!
//! | kind        | fields |
//! |-------------|--------|
//! | `"conv"`    | `in_channels`, `out_channels`, `kernel`, `stride`, `padding`, `input_hw`, `groups`, `precision` |
//! | `"dwconv"`  | `channels`, `kernel`, `stride`, `padding`, `input_hw`, `precision` |
//! | `"fc"`      | `in_features`, `out_features`, `precision` |
//! | `"pool"`    | `channels`, `input_hw`, `window`, `stride`, `padding`, `op` (`"max"`/`"avg"`) |
//! | `"lstm"`/`"rnn"` | `input_size`, `hidden_size`, `precision` |
//! | `"eltwise"` | `elements`, `op` (`"add"`/`"mul"`) |
//! | `"act"`     | `elements` |

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_core::json::{parse as parse_json, Json};
use bitfusion_core::postproc::PoolOp;

use crate::layer::{
    ActivationLayer, CellKind, Conv2d, Dense, DepthwiseConv2d, Eltwise, Layer, Pool2d, Recurrent,
};
use crate::model::{Model, NamedLayer};
use crate::quantspec::QuantSpec;

/// The format discriminant every model document must carry.
pub const MODEL_FORMAT: &str = "bitfusion-model/1";

/// The layer kinds the format accepts, in the order diagnostics list them.
pub const LAYER_KINDS: [&str; 8] = [
    "conv", "dwconv", "fc", "pool", "lstm", "rnn", "eltwise", "act",
];

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

fn pair_json(p: (usize, usize)) -> Json {
    Json::Arr(vec![Json::uint(p.0 as u64), Json::uint(p.1 as u64)])
}

fn layer_to_json(l: &NamedLayer) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![("name", Json::Str(l.name.clone()))];
    match &l.layer {
        Layer::Conv2d(c) => {
            pairs.push(("kind", Json::Str("conv".into())));
            pairs.push(("in_channels", Json::uint(c.in_channels as u64)));
            pairs.push(("out_channels", Json::uint(c.out_channels as u64)));
            pairs.push(("kernel", pair_json(c.kernel)));
            pairs.push(("stride", pair_json(c.stride)));
            pairs.push(("padding", pair_json(c.padding)));
            pairs.push(("input_hw", pair_json(c.input_hw)));
            pairs.push(("groups", Json::uint(c.groups as u64)));
            pairs.push(("precision", Json::Str(c.precision.compact())));
        }
        Layer::DepthwiseConv2d(c) => {
            pairs.push(("kind", Json::Str("dwconv".into())));
            pairs.push(("channels", Json::uint(c.channels as u64)));
            pairs.push(("kernel", pair_json(c.kernel)));
            pairs.push(("stride", pair_json(c.stride)));
            pairs.push(("padding", pair_json(c.padding)));
            pairs.push(("input_hw", pair_json(c.input_hw)));
            pairs.push(("precision", Json::Str(c.precision.compact())));
        }
        Layer::Dense(d) => {
            pairs.push(("kind", Json::Str("fc".into())));
            pairs.push(("in_features", Json::uint(d.in_features as u64)));
            pairs.push(("out_features", Json::uint(d.out_features as u64)));
            pairs.push(("precision", Json::Str(d.precision.compact())));
        }
        Layer::Pool2d(p) => {
            pairs.push(("kind", Json::Str("pool".into())));
            pairs.push(("channels", Json::uint(p.channels as u64)));
            pairs.push(("input_hw", pair_json(p.input_hw)));
            pairs.push(("window", pair_json(p.window)));
            pairs.push(("stride", pair_json(p.stride)));
            pairs.push(("padding", pair_json(p.padding)));
            pairs.push((
                "op",
                Json::Str(match p.op {
                    PoolOp::Max => "max".into(),
                    PoolOp::Average => "avg".into(),
                }),
            ));
        }
        Layer::Recurrent(r) => {
            pairs.push((
                "kind",
                Json::Str(match r.cell {
                    CellKind::Lstm => "lstm".into(),
                    CellKind::Rnn => "rnn".into(),
                }),
            ));
            pairs.push(("input_size", Json::uint(r.input_size as u64)));
            pairs.push(("hidden_size", Json::uint(r.hidden_size as u64)));
            pairs.push(("precision", Json::Str(r.precision.compact())));
        }
        Layer::Eltwise(e) => {
            pairs.push(("kind", Json::Str("eltwise".into())));
            pairs.push(("elements", Json::uint(e.elements as u64)));
            pairs.push((
                "op",
                Json::Str(if e.is_add { "add".into() } else { "mul".into() }),
            ));
        }
        Layer::Activation(a) => {
            pairs.push(("kind", Json::Str("act".into())));
            pairs.push(("elements", Json::uint(a.elements as u64)));
        }
    }
    Json::obj(pairs)
}

/// Exports a model as a `bitfusion-model/1` document (the canonical field
/// order; encode with [`Json::encode`] for the single-line wire form).
///
/// The export never carries a `"quant"` key: a [`Model`]'s layers already
/// hold their final precisions.
pub fn export_model(model: &Model) -> Json {
    Json::obj(vec![
        ("format", Json::Str(MODEL_FORMAT.into())),
        ("name", Json::Str(model.name.clone())),
        (
            "layers",
            Json::Arr(model.layers.iter().map(layer_to_json).collect()),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

fn fields<'a>(doc: &'a Json, path: &str) -> Result<&'a [(String, Json)], String> {
    match doc {
        Json::Obj(pairs) => Ok(pairs),
        _ => Err(format!("{path}: expected an object")),
    }
}

/// Rejects fields outside `allowed`, naming the first offender and the
/// accepted set (the protocol's typo'd-field discipline).
fn check_fields(pairs: &[(String, Json)], path: &str, allowed: &[&str]) -> Result<(), String> {
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "{path}.{k}: unknown field (expected {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn get<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{path}.{key}: missing required field"))
}

fn str_field(doc: &Json, path: &str, key: &str) -> Result<String, String> {
    get(doc, path, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{path}.{key}: expected a string"))
}

/// A dimension field: a positive integer that fits `usize`.
fn dim_field(doc: &Json, path: &str, key: &str) -> Result<usize, String> {
    let v = get(doc, path, key)?
        .as_u64()
        .ok_or_else(|| format!("{path}.{key}: expected a non-negative integer"))?;
    let v = usize::try_from(v).map_err(|_| format!("{path}.{key}: {v} does not fit usize"))?;
    if v == 0 {
        return Err(format!("{path}.{key}: must be positive"));
    }
    Ok(v)
}

/// A `(a, b)` pair field: a two-element array of non-negative integers.
/// `min` is the smallest value each element may take (0 for padding,
/// 1 for everything else).
fn pair_field(doc: &Json, path: &str, key: &str, min: usize) -> Result<(usize, usize), String> {
    let arr = get(doc, path, key)?
        .as_arr()
        .ok_or_else(|| format!("{path}.{key}: expected a two-element array"))?;
    if arr.len() != 2 {
        return Err(format!(
            "{path}.{key}: expected exactly 2 elements, got {}",
            arr.len()
        ));
    }
    let side = |i: usize| -> Result<usize, String> {
        let v = arr[i]
            .as_u64()
            .ok_or_else(|| format!("{path}.{key}[{i}]: expected a non-negative integer"))?;
        let v =
            usize::try_from(v).map_err(|_| format!("{path}.{key}[{i}]: {v} does not fit usize"))?;
        if v < min {
            return Err(format!("{path}.{key}[{i}]: must be at least {min}"));
        }
        Ok(v)
    };
    Ok((side(0)?, side(1)?))
}

fn precision_field(doc: &Json, path: &str) -> Result<PairPrecision, String> {
    let text = str_field(doc, path, "precision")?;
    text.parse().map_err(|_| {
        format!("{path}.precision: bad precision `{text}` (compact `input/weight` bits, e.g. `4/1`)")
    })
}

/// Checks that a sliding window fits its padded input, so `output_hw()`
/// can never underflow downstream.
fn check_window(
    path: &str,
    input_hw: (usize, usize),
    padding: (usize, usize),
    window: (usize, usize),
    what: &str,
) -> Result<(), String> {
    if input_hw.0 + 2 * padding.0 < window.0 || input_hw.1 + 2 * padding.1 < window.1 {
        return Err(format!(
            "{path}: {what} {}x{} exceeds padded input {}x{}",
            window.0,
            window.1,
            input_hw.0 + 2 * padding.0,
            input_hw.1 + 2 * padding.1
        ));
    }
    Ok(())
}

fn layer_from_json(doc: &Json, index: usize) -> Result<NamedLayer, String> {
    let path = format!("layers[{index}]");
    let pairs = fields(doc, &path)?;
    let name = str_field(doc, &path, "name")?;
    if name.is_empty() {
        return Err(format!("{path}.name: must not be empty"));
    }
    let kind = str_field(doc, &path, "kind")?;
    let layer = match kind.as_str() {
        "conv" => {
            check_fields(
                pairs,
                &path,
                &[
                    "name",
                    "kind",
                    "in_channels",
                    "out_channels",
                    "kernel",
                    "stride",
                    "padding",
                    "input_hw",
                    "groups",
                    "precision",
                ],
            )?;
            let c = Conv2d {
                in_channels: dim_field(doc, &path, "in_channels")?,
                out_channels: dim_field(doc, &path, "out_channels")?,
                kernel: pair_field(doc, &path, "kernel", 1)?,
                stride: pair_field(doc, &path, "stride", 1)?,
                padding: pair_field(doc, &path, "padding", 0)?,
                input_hw: pair_field(doc, &path, "input_hw", 1)?,
                groups: dim_field(doc, &path, "groups")?,
                precision: precision_field(doc, &path)?,
            };
            check_window(&path, c.input_hw, c.padding, c.kernel, "kernel")?;
            if !c.in_channels.is_multiple_of(c.groups) || !c.out_channels.is_multiple_of(c.groups) {
                return Err(format!(
                    "{path}.groups: {} does not divide channels {}->{}",
                    c.groups, c.in_channels, c.out_channels
                ));
            }
            Layer::Conv2d(c)
        }
        "dwconv" => {
            check_fields(
                pairs,
                &path,
                &[
                    "name",
                    "kind",
                    "channels",
                    "kernel",
                    "stride",
                    "padding",
                    "input_hw",
                    "precision",
                ],
            )?;
            let c = DepthwiseConv2d {
                channels: dim_field(doc, &path, "channels")?,
                kernel: pair_field(doc, &path, "kernel", 1)?,
                stride: pair_field(doc, &path, "stride", 1)?,
                padding: pair_field(doc, &path, "padding", 0)?,
                input_hw: pair_field(doc, &path, "input_hw", 1)?,
                precision: precision_field(doc, &path)?,
            };
            check_window(&path, c.input_hw, c.padding, c.kernel, "kernel")?;
            Layer::DepthwiseConv2d(c)
        }
        "fc" => {
            check_fields(
                pairs,
                &path,
                &["name", "kind", "in_features", "out_features", "precision"],
            )?;
            Layer::Dense(Dense {
                in_features: dim_field(doc, &path, "in_features")?,
                out_features: dim_field(doc, &path, "out_features")?,
                precision: precision_field(doc, &path)?,
            })
        }
        "pool" => {
            check_fields(
                pairs,
                &path,
                &[
                    "name", "kind", "channels", "input_hw", "window", "stride", "padding", "op",
                ],
            )?;
            let op = match str_field(doc, &path, "op")?.as_str() {
                "max" => PoolOp::Max,
                "avg" => PoolOp::Average,
                other => {
                    return Err(format!(
                        "{path}.op: unknown pooling op \"{other}\" (max, avg)"
                    ))
                }
            };
            let p = Pool2d {
                channels: dim_field(doc, &path, "channels")?,
                input_hw: pair_field(doc, &path, "input_hw", 1)?,
                window: pair_field(doc, &path, "window", 1)?,
                stride: pair_field(doc, &path, "stride", 1)?,
                padding: pair_field(doc, &path, "padding", 0)?,
                op,
            };
            check_window(&path, p.input_hw, p.padding, p.window, "window")?;
            Layer::Pool2d(p)
        }
        cell @ ("lstm" | "rnn") => {
            check_fields(
                pairs,
                &path,
                &["name", "kind", "input_size", "hidden_size", "precision"],
            )?;
            Layer::Recurrent(Recurrent {
                cell: if cell == "lstm" {
                    CellKind::Lstm
                } else {
                    CellKind::Rnn
                },
                input_size: dim_field(doc, &path, "input_size")?,
                hidden_size: dim_field(doc, &path, "hidden_size")?,
                precision: precision_field(doc, &path)?,
            })
        }
        "eltwise" => {
            check_fields(pairs, &path, &["name", "kind", "elements", "op"])?;
            let is_add = match str_field(doc, &path, "op")?.as_str() {
                "add" => true,
                "mul" => false,
                other => {
                    return Err(format!(
                        "{path}.op: unknown eltwise op \"{other}\" (add, mul)"
                    ))
                }
            };
            Layer::Eltwise(Eltwise {
                elements: dim_field(doc, &path, "elements")?,
                is_add,
            })
        }
        "act" => {
            check_fields(pairs, &path, &["name", "kind", "elements"])?;
            Layer::Activation(ActivationLayer {
                elements: dim_field(doc, &path, "elements")?,
            })
        }
        other => {
            return Err(format!(
                "{path}.kind: unknown layer kind \"{other}\" ({})",
                LAYER_KINDS.join(", ")
            ))
        }
    };
    Ok(NamedLayer { name, layer })
}

/// Builds a [`Model`] from a parsed `bitfusion-model/1` document.
///
/// # Errors
///
/// Returns a message locating the offense (`layers[3].kind: ...`) for a
/// wrong format discriminant, unknown or missing fields, unknown layer
/// kinds, malformed values, geometrically impossible shapes, or a
/// `"quant"` spec that fails to parse or apply.
pub fn model_from_json(doc: &Json) -> Result<Model, String> {
    let pairs = fields(doc, "model")?;
    check_fields(pairs, "model", &["format", "name", "layers", "quant"])?;
    let format = str_field(doc, "model", "format")?;
    if format != MODEL_FORMAT {
        return Err(format!(
            "model.format: unsupported format \"{format}\" (expected \"{MODEL_FORMAT}\")"
        ));
    }
    let name = str_field(doc, "model", "name")?;
    if name.is_empty() {
        return Err("model.name: must not be empty".to_string());
    }
    let layer_docs = get(doc, "model", "layers")?
        .as_arr()
        .ok_or_else(|| "model.layers: expected an array".to_string())?;
    if layer_docs.is_empty() {
        return Err("model.layers: must not be empty".to_string());
    }
    let mut layers = Vec::with_capacity(layer_docs.len());
    for (i, l) in layer_docs.iter().enumerate() {
        layers.push(layer_from_json(l, i)?);
    }
    let model = Model { name, layers };
    match doc.get("quant") {
        None => Ok(model),
        Some(q) => {
            let text = q
                .as_str()
                .ok_or_else(|| "model.quant: expected a quant-spec string".to_string())?;
            let spec = QuantSpec::parse(text).map_err(|e| format!("model.quant: {e}"))?;
            spec.apply(&model).map_err(|e| format!("model.quant: {e}"))
        }
    }
}

/// Parses a `bitfusion-model/1` document from JSON text.
///
/// # Errors
///
/// As [`model_from_json`], plus JSON syntax errors with their byte offset.
pub fn parse_model(text: &str) -> Result<Model, String> {
    let doc = parse_json(text).map_err(|e| format!("model: {e}"))?;
    model_from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::Benchmark;

    #[test]
    fn zoo_round_trips_exactly() {
        // Every zoo network — quantized, topology, and reference variants —
        // survives export ∘ parse as the *same* Model value, and the
        // re-export is byte-identical (the encode∘parse∘encode fixed point).
        for b in Benchmark::ALL {
            for model in [b.model(), b.topology(), b.reference_model()] {
                let text = export_model(&model).encode();
                let parsed = parse_model(&text).unwrap_or_else(|e| panic!("{b}: {e}"));
                assert_eq!(parsed, model, "{b}/{}", model.name);
                assert_eq!(export_model(&parsed).encode(), text, "{b}/{}", model.name);
            }
        }
    }

    #[test]
    fn depthwise_layers_round_trip() {
        use bitfusion_core::bitwidth::PairPrecision;
        let model = Model::new(
            "dw",
            vec![
                (
                    "dw1",
                    Layer::DepthwiseConv2d(DepthwiseConv2d {
                        channels: 32,
                        kernel: (3, 3),
                        stride: (2, 2),
                        padding: (1, 1),
                        input_hw: (112, 112),
                        precision: PairPrecision::from_bits(8, 4).unwrap(),
                    }),
                ),
                (
                    "pw1",
                    Layer::Conv2d(Conv2d {
                        in_channels: 32,
                        out_channels: 64,
                        kernel: (1, 1),
                        stride: (1, 1),
                        padding: (0, 0),
                        input_hw: (56, 56),
                        groups: 1,
                        precision: PairPrecision::from_bits(8, 8).unwrap(),
                    }),
                ),
            ],
        );
        let text = export_model(&model).encode();
        assert!(text.contains(r#""kind":"dwconv""#), "{text}");
        assert_eq!(parse_model(&text).unwrap(), model);
    }

    #[test]
    fn diagnostics_name_the_layer_and_field() {
        let base = r#"{"format":"bitfusion-model/1","name":"m","layers":[
            {"name":"fc1","kind":"fc","in_features":10,"out_features":5,"precision":"8/8"},
            {"name":"bad","kind":"conv3d"}]}"#;
        let e = parse_model(base).unwrap_err();
        assert_eq!(
            e,
            "layers[1].kind: unknown layer kind \"conv3d\" (conv, dwconv, fc, pool, lstm, rnn, eltwise, act)"
        );

        let cases: &[(&str, &str)] = &[
            // Unknown field on a layer, protocol-style.
            (
                r#"{"format":"bitfusion-model/1","name":"m","layers":[
                    {"name":"fc1","kind":"fc","in_features":10,"out_features":5,"precision":"8/8","bias":true}]}"#,
                "layers[0].bias: unknown field",
            ),
            // Missing required field.
            (
                r#"{"format":"bitfusion-model/1","name":"m","layers":[
                    {"name":"fc1","kind":"fc","out_features":5,"precision":"8/8"}]}"#,
                "layers[0].in_features: missing required field",
            ),
            // Bad precision spelling.
            (
                r#"{"format":"bitfusion-model/1","name":"m","layers":[
                    {"name":"fc1","kind":"fc","in_features":10,"out_features":5,"precision":"9/9"}]}"#,
                "layers[0].precision: bad precision `9/9`",
            ),
            // Zero dimension.
            (
                r#"{"format":"bitfusion-model/1","name":"m","layers":[
                    {"name":"fc1","kind":"fc","in_features":0,"out_features":5,"precision":"8/8"}]}"#,
                "layers[0].in_features: must be positive",
            ),
            // Wrong-arity pair.
            (
                r#"{"format":"bitfusion-model/1","name":"m","layers":[
                    {"name":"c","kind":"dwconv","channels":8,"kernel":[3],"stride":[1,1],"padding":[1,1],"input_hw":[8,8],"precision":"8/8"}]}"#,
                "layers[0].kernel: expected exactly 2 elements",
            ),
            // Geometrically impossible window.
            (
                r#"{"format":"bitfusion-model/1","name":"m","layers":[
                    {"name":"c","kind":"dwconv","channels":8,"kernel":[9,9],"stride":[1,1],"padding":[0,0],"input_hw":[4,4],"precision":"8/8"}]}"#,
                "layers[0]: kernel 9x9 exceeds padded input 4x4",
            ),
            // Unknown top-level field.
            (
                r#"{"format":"bitfusion-model/1","name":"m","version":2,"layers":[]}"#,
                "model.version: unknown field",
            ),
            // Wrong format string.
            (
                r#"{"format":"bitfusion-model/2","name":"m","layers":[]}"#,
                "model.format: unsupported format \"bitfusion-model/2\"",
            ),
            // Unknown pool op.
            (
                r#"{"format":"bitfusion-model/1","name":"m","layers":[
                    {"name":"p","kind":"pool","channels":8,"input_hw":[8,8],"window":[2,2],"stride":[2,2],"padding":[0,0],"op":"median"}]}"#,
                "layers[0].op: unknown pooling op \"median\"",
            ),
        ];
        for (text, needle) in cases {
            let e = parse_model(text).unwrap_err();
            assert!(e.contains(needle), "wanted `{needle}`, got `{e}`");
        }
    }

    #[test]
    fn quant_key_applies_at_load() {
        let text = r#"{"format":"bitfusion-model/1","name":"m","quant":"uniform8","layers":[
            {"name":"fc1","kind":"fc","in_features":10,"out_features":5,"precision":"2/2"}]}"#;
        let m = parse_model(text).unwrap();
        assert_eq!(
            m.layers[0].layer.precision().unwrap().compact(),
            "8/8",
            "quant key overrides the layer precision"
        );
        // A bad spec, and a layer override that misses, both locate "quant".
        let bad = text.replace("uniform8", "uniform9");
        assert!(parse_model(&bad).unwrap_err().starts_with("model.quant:"));
        let miss = text.replace("uniform8", "layer:conv9=4/4");
        assert!(parse_model(&miss).unwrap_err().starts_with("model.quant:"));
    }

    #[test]
    fn empty_and_malformed_documents_are_rejected() {
        assert!(parse_model("").unwrap_err().contains("model:"));
        assert!(parse_model("[]").unwrap_err().contains("expected an object"));
        assert!(parse_model(r#"{"format":"bitfusion-model/1","name":"m","layers":[]}"#)
            .unwrap_err()
            .contains("layers: must not be empty"));
        assert!(parse_model(r#"{"format":"bitfusion-model/1","name":"","layers":[1]}"#)
            .unwrap_err()
            .contains("model.name: must not be empty"));
    }
}
