//! # bitfusion-service
//!
//! The service layer of the Bit Fusion reproduction: a [`Session`] facade
//! and a typed request/response protocol through which **all** evaluation
//! flows.
//!
//! The paper's toolchain separates a compile-once Fusion-ISA artifact from
//! its cycle-accurate evaluation (Sharma et al., ISCA 2018 §IV–V); this
//! crate makes that split an API. Instead of every entry point hand-wiring
//! compile → simulate → render, callers build a [`Request`], hand it to a
//! [`Session`], and get a [`Response`]:
//!
//! * [`protocol`] — [`Request`]/[`Response`] enums covering
//!   `list`/`report`/`compare`/`asm`/`sweep`/`dse`/`quantize`, with a
//!   deterministic single-line JSON wire form (`encode ∘ parse ∘ encode`
//!   is a fixed point, property-tested). `report`, `compare`, `sweep`,
//!   and `dse` carry optional quantization overrides
//!   ([`QuantSpec`](bitfusion_dnn::quantspec::QuantSpec) spellings), and
//!   `dse` explores lists of them as a design-space axis;
//! * [`json`] — the hand-rolled JSON layer beneath it (re-exported from
//!   `bitfusion-core`, where the model format shares it; the workspace is
//!   offline — no serde);
//! * [`session`] — the facade: owns the calibration knobs
//!   ([`SimOptions`](bitfusion_sim::SimOptions)), the default backend, and
//!   the shared, capacity-bounded
//!   [`ArtifactCache`](bitfusion_compiler::ArtifactCache), so `report`,
//!   `compare`, `sweep`, and `dse` all reuse compilations;
//! * [`mod@render`] — the human-readable view of each response (the CLI's
//!   non-`--json` output), derived from the same value as the wire form;
//! * [`mod@serve`] — the long-running JSON-lines loop (`bitfusion-cli serve`):
//!   one request per stdin line, one response per stdout line, dispatched
//!   concurrently over the sim crate's worker pool with output kept in
//!   request order.
//!
//! Determinism is the load-bearing property: for a fixed session
//! configuration the response bytes depend only on the request — not on
//! cache warmth, worker count, or interleaving — so the serve loop and
//! the one-shot CLI are byte-identical by construction. See `DESIGN.md`,
//! "The service layer".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use bitfusion_core::json;
pub mod net;
pub mod protocol;
pub mod render;
pub mod serve;
pub mod session;

pub use bitfusion_core::json::Json;
pub use protocol::{BackendChoice, DiskStoreInfo, DseParams, Request, Response, StatsReply};
pub use render::render;
pub use net::{NetConfig, NetListener, NetSummary};
pub use serve::{serve, ServeSummary};
pub use session::Session;
