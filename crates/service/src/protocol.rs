//! The typed request/response protocol every evaluation path speaks.
//!
//! A [`Request`] names one operation the reproduction can perform —
//! the same seven the CLI exposes (`list`, `report`, `compare`, `asm`,
//! `sweep`, `dse`, `quantize`) — and a [`Response`] carries its full
//! machine-readable result. Both sides round-trip through the deterministic JSON layer
//! ([`crate::json`]): `encode ∘ parse ∘ encode` is a fixed point for every
//! variant (property-tested), and the wire form is a single line, so the
//! `serve` loop's JSON-lines framing and the one-shot `--json` flag emit
//! byte-identical documents.
//!
//! Wire shape: requests are objects with a `"cmd"` discriminant
//! (`{"cmd":"report","benchmark":"LSTM",...}`), responses with a
//! `"reply"` discriminant mirroring the request that produced them, plus
//! `{"reply":"error","message":...}` for failures. Optional fields are
//! omitted when absent; absent fields parse to their documented defaults,
//! so hand-written requests can stay terse.

use bitfusion_dnn::model::Model;
use bitfusion_dnn::quantspec::QuantSpec;
use bitfusion_dnn::schema::{export_model, model_from_json};

use crate::json::{parse as parse_json, Json};

/// Converts a [`QuantSpec`] to its JSON document: `{"preset":"uniform8"}`
/// for named presets, or the explicit
/// `{"default":"4/1","kinds":[{"kind":"conv","precision":"2/2"}],
/// "layers":[{"layer":"fc8","precision":"8/8"}]}` form (absent fields
/// omitted). `encode ∘ parse ∘ encode` is a fixed point (property-tested
/// in `tests/protocol_roundtrip.rs`).
pub fn quant_spec_to_json(spec: &QuantSpec) -> Json {
    let text = spec.to_string();
    if !text.contains('=') {
        // The canonical spelling is a preset name (`paper`, `uniformN`).
        return Json::obj(vec![("preset", Json::Str(text))]);
    }
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    if let Some(p) = spec.default {
        pairs.push(("default", Json::Str(p.compact())));
    }
    if !spec.kinds.is_empty() {
        pairs.push((
            "kinds",
            Json::Arr(
                spec.kinds
                    .iter()
                    .map(|(kind, p)| {
                        Json::obj(vec![
                            ("kind", Json::Str(kind.clone())),
                            ("precision", Json::Str(p.compact())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !spec.layers.is_empty() {
        pairs.push((
            "layers",
            Json::Arr(
                spec.layers
                    .iter()
                    .map(|(layer, p)| {
                        Json::obj(vec![
                            ("layer", Json::Str(layer.clone())),
                            ("precision", Json::Str(p.compact())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(pairs)
}

/// Reads a [`QuantSpec`] back from its JSON document (either form
/// [`quant_spec_to_json`] emits). This is also the format of the
/// `--quant <spec.json>` files the CLI accepts.
///
/// # Errors
///
/// Names the missing or ill-typed field, or the invalid precision/kind.
pub fn quant_spec_from_json(doc: &Json) -> Result<QuantSpec, String> {
    if let Some(preset) = doc.get("preset") {
        let preset = preset.as_str().ok_or("preset must be a string")?;
        if doc.get("default").is_some()
            || doc.get("kinds").is_some()
            || doc.get("layers").is_some()
        {
            return Err("a quant spec is either a preset or explicit fields, not both".into());
        }
        return QuantSpec::parse(preset);
    }
    let precision_of = |entry: &Json, clause: &str| -> Result<_, String> {
        let p = entry
            .get("precision")
            .and_then(Json::as_str)
            .ok_or(format!("{clause} entry needs a string `precision`"))?;
        p.parse()
            .map_err(|_| format!("bad precision `{p}` in {clause} entry (e.g. `4/1`)"))
    };
    let mut spec = QuantSpec::default();
    if let Some(d) = doc.get("default") {
        let d = d.as_str().ok_or("default must be a string like `4/1`")?;
        spec.default =
            Some(d.parse().map_err(|_| format!("bad default precision `{d}` (e.g. `4/1`)"))?);
    }
    if let Some(kinds) = doc.get("kinds") {
        for entry in kinds.as_arr().ok_or("kinds must be an array")? {
            let kind = entry
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("kinds entry needs a string `kind`")?;
            if !bitfusion_dnn::quantspec::QUANT_KINDS.contains(&kind) {
                return Err(format!(
                    "unknown kind `{kind}` (expected one of: {})",
                    bitfusion_dnn::quantspec::QUANT_KINDS.join(", ")
                ));
            }
            spec.kinds.push((kind.to_string(), precision_of(entry, "kinds")?));
        }
    }
    if let Some(layers) = doc.get("layers") {
        for entry in layers.as_arr().ok_or("layers must be an array")? {
            let layer = entry
                .get("layer")
                .and_then(Json::as_str)
                .ok_or("layers entry needs a string `layer`")?;
            if layer.is_empty() {
                return Err("layers entry has an empty layer name".into());
            }
            spec.layers
                .push((layer.to_string(), precision_of(entry, "layers")?));
        }
    }
    if spec.is_paper() {
        return Err(
            "empty quant spec (use {\"preset\":\"paper\"} for the identity assignment)".into(),
        );
    }
    Ok(spec)
}

/// Which simulation backend evaluates a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// The closed-form analytic model (the default: cheap, sweep-friendly).
    Analytic,
    /// The trace-driven event model (stall attribution, occupancy).
    Event,
}

impl BackendChoice {
    /// Wire / CLI spelling.
    pub const fn as_str(self) -> &'static str {
        match self {
            BackendChoice::Analytic => "analytic",
            BackendChoice::Event => "event",
        }
    }

    /// Parses the wire / CLI spelling.
    ///
    /// # Errors
    ///
    /// Names the unknown value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "analytic" => Ok(BackendChoice::Analytic),
            "event" => Ok(BackendChoice::Event),
            other => Err(format!("unknown backend `{other}` (analytic|event)")),
        }
    }
}

/// Which preset architecture a `report`/`asm` request runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArchPreset {
    /// The paper's 45 nm, 512-Fusion-Unit configuration.
    #[default]
    Isca45nm,
    /// The 16 nm GPU-comparison configuration.
    Gpu16nm,
    /// The Stripes-matched configuration (980 MHz).
    StripesMatched,
}

impl ArchPreset {
    /// Wire / CLI spelling.
    pub const fn as_str(self) -> &'static str {
        match self {
            ArchPreset::Isca45nm => "45nm",
            ArchPreset::Gpu16nm => "16nm",
            ArchPreset::StripesMatched => "stripes",
        }
    }

    /// Parses the wire / CLI spelling.
    ///
    /// # Errors
    ///
    /// Names the unknown value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "45nm" => Ok(ArchPreset::Isca45nm),
            "16nm" => Ok(ArchPreset::Gpu16nm),
            "stripes" => Ok(ArchPreset::StripesMatched),
            other => Err(format!("unknown arch `{other}` (45nm|16nm|stripes)")),
        }
    }
}

/// Which axis a `sweep` request walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Batch size at fixed architecture (Figure 16).
    Batch,
    /// Off-chip bandwidth at fixed batch (Figure 15).
    Bandwidth,
}

impl SweepAxis {
    /// Wire / CLI spelling.
    pub const fn as_str(self) -> &'static str {
        match self {
            SweepAxis::Batch => "batch",
            SweepAxis::Bandwidth => "bandwidth",
        }
    }

    /// Parses the wire / CLI spelling.
    ///
    /// # Errors
    ///
    /// Names the unknown value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "batch" => Ok(SweepAxis::Batch),
            "bandwidth" => Ok(SweepAxis::Bandwidth),
            other => Err(format!("unknown sweep axis `{other}` (batch|bandwidth)")),
        }
    }
}

/// What a simulating request runs: a zoo benchmark by name, or an
/// external model carried inline as its `bitfusion-model/1` document.
///
/// On the wire the two spellings are mutually exclusive fields of the
/// request object — `"benchmark":"lstm"` names a zoo network,
/// `"model":{"format":"bitfusion-model/1",...}` embeds an external one
/// (the same document `--model model.json` reads from disk). A request
/// carrying both, or neither, is rejected by name.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSource {
    /// A benchmark of the built-in zoo, resolved case-insensitively.
    Zoo(String),
    /// A parsed external model (the `--model model.json` path). External
    /// models flow through the same caches as zoo networks, keyed by
    /// structural fingerprint — never by display name.
    External(Model),
}

impl ModelSource {
    /// A zoo source by name.
    pub fn zoo(name: impl Into<String>) -> Self {
        ModelSource::Zoo(name.into())
    }

    /// The name shown in replies and error messages (the zoo name as
    /// given, or the external model's own `name`).
    pub fn display_name(&self) -> &str {
        match self {
            ModelSource::Zoo(name) => name,
            ModelSource::External(m) => &m.name,
        }
    }

    /// Pushes the wire field: `"benchmark":"name"` for zoo sources, or
    /// `"model":{…}` (the full model document) for external ones.
    fn push_wire_field(&self, pairs: &mut Vec<(&str, Json)>) {
        match self {
            ModelSource::Zoo(name) => pairs.push(("benchmark", Json::Str(name.clone()))),
            ModelSource::External(m) => pairs.push(("model", export_model(m))),
        }
    }

    /// Reads the source from a request document: exactly one of
    /// `benchmark` (a zoo name) or `model` (an inline model document).
    fn from_doc(doc: &Json) -> Result<Self, String> {
        match (doc.get("benchmark"), doc.get("model")) {
            (Some(_), Some(_)) => {
                Err("give either `benchmark` or `model`, not both".to_string())
            }
            (None, None) => Err("missing field `benchmark` (or an inline `model`)".to_string()),
            (Some(b), None) => Ok(ModelSource::Zoo(
                b.as_str()
                    .map(str::to_string)
                    .ok_or("field `benchmark` must be a string")?,
            )),
            (None, Some(m)) => Ok(ModelSource::External(model_from_json(m)?)),
        }
    }
}

/// Parameters of a `dse` request: the architecture grid (comma lists on
/// the CLI, arrays on the wire) crossed with networks and batch sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct DseParams {
    /// Array-row candidates.
    pub rows: Vec<u64>,
    /// Array-column candidates.
    pub cols: Vec<u64>,
    /// IBUF capacities in KB.
    pub ibuf_kb: Vec<u64>,
    /// WBUF capacities in KB.
    pub wbuf_kb: Vec<u64>,
    /// OBUF capacities in KB.
    pub obuf_kb: Vec<u64>,
    /// Off-chip bandwidths in bits/cycle.
    pub bandwidth: Vec<u64>,
    /// Batch sizes.
    pub batches: Vec<u64>,
    /// Quantization policies (compact spellings: presets or clause
    /// lists), crossed with every network.
    pub quants: Vec<String>,
    /// Benchmark names, or `None` for the whole zoo (or, when external
    /// `models` are given and no networks are named, none of the zoo).
    pub networks: Option<Vec<String>>,
    /// External models explored alongside the named networks (wire:
    /// `"models":[{model doc},...]`, CLI: repeated `--model` flags).
    pub models: Vec<Model>,
    /// Worker threads (0 = all cores).
    pub workers: u64,
    /// Backend override (session default when absent).
    pub backend: Option<BackendChoice>,
    /// Checkpoint completed points to the session's persistent cache
    /// directory and restore any already checkpointed there — the
    /// `dse --resume` flag. Requires the session to have a `--cache-dir`;
    /// never changes response bytes, only wall-clock.
    pub resume: bool,
}

impl Default for DseParams {
    fn default() -> Self {
        DseParams {
            rows: vec![16, 32],
            cols: vec![8, 16],
            ibuf_kb: vec![32],
            wbuf_kb: vec![64],
            obuf_kb: vec![16],
            bandwidth: vec![64, 128, 256],
            batches: vec![16],
            quants: vec!["paper".to_string()],
            networks: None,
            models: Vec::new(),
            workers: 0,
            backend: None,
            resume: false,
        }
    }
}

/// One operation the service can perform.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enumerate the benchmark zoo and preset architectures.
    List,
    /// Simulate one model on one architecture.
    Report {
        /// What to run: a zoo benchmark or an external model.
        model: ModelSource,
        /// Batch size.
        batch: u64,
        /// Off-chip bandwidth override in bits/cycle.
        bandwidth: Option<u32>,
        /// Preset architecture.
        arch: ArchPreset,
        /// Backend override (session default when absent).
        backend: Option<BackendChoice>,
        /// Quantization override (compact spelling; paper assignment when
        /// absent).
        quant: Option<String>,
    },
    /// Compare one model against the Eyeriss/Stripes/GPU baselines.
    Compare {
        /// What to run: a zoo benchmark or an external model.
        model: ModelSource,
        /// Batch size.
        batch: u64,
        /// Backend override (session default when absent).
        backend: Option<BackendChoice>,
        /// Quantization override for the Bit Fusion and Stripes sides
        /// (the 16-bit Eyeriss/GPU references are precision-blind).
        quant: Option<String>,
    },
    /// Dump the compiled Fusion-ISA assembly.
    Asm {
        /// What to compile: a zoo benchmark or an external model.
        model: ModelSource,
        /// Batch size.
        batch: u64,
        /// Preset architecture the code is compiled for.
        arch: ArchPreset,
        /// Restrict output to one layer.
        layer: Option<String>,
    },
    /// Walk one sensitivity axis (Figure 15/16).
    Sweep {
        /// What to run: a zoo benchmark or an external model.
        model: ModelSource,
        /// The swept axis.
        axis: SweepAxis,
        /// Backend override (session default when absent).
        backend: Option<BackendChoice>,
        /// Quantization override (paper assignment when absent).
        quant: Option<String>,
    },
    /// Explore an architecture grid and reduce to a Pareto frontier.
    Dse(DseParams),
    /// Show what a quantization policy assigns to one model's layers.
    Quantize {
        /// What to quantize: a zoo benchmark or an external model.
        model: ModelSource,
        /// Quantization policy (compact spelling; paper assignment when
        /// absent).
        quant: Option<String>,
    },
    /// Live server counters: cache tiers, admission queue, coalescing,
    /// latency percentiles. Answered by the network server
    /// (`serve --listen`/`--unix`); a plain [`crate::Session`] has no
    /// server counters and answers with an error. The reply is the one
    /// deliberate exception to the byte-determinism contract — it reports
    /// live state, so identical `stats` requests may differ.
    Stats,
    /// Admin request: stop accepting connections, drain in-flight work,
    /// exit. Only honoured over a unix socket (a remote TCP client must
    /// not be able to stop the server); elsewhere it answers an error.
    Shutdown,
}

impl Request {
    /// The request's `cmd` discriminant (also the CLI subcommand name).
    pub const fn cmd(&self) -> &'static str {
        match self {
            Request::List => "list",
            Request::Report { .. } => "report",
            Request::Compare { .. } => "compare",
            Request::Asm { .. } => "asm",
            Request::Sweep { .. } => "sweep",
            Request::Dse(_) => "dse",
            Request::Quantize { .. } => "quantize",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// Converts to the wire document.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("cmd", Json::Str(self.cmd().to_string()))];
        match self {
            Request::List => {}
            Request::Report {
                model,
                batch,
                bandwidth,
                arch,
                backend,
                quant,
            } => {
                model.push_wire_field(&mut pairs);
                pairs.push(("batch", Json::uint(*batch)));
                if let Some(bw) = bandwidth {
                    pairs.push(("bandwidth", Json::uint(*bw as u64)));
                }
                pairs.push(("arch", Json::Str(arch.as_str().to_string())));
                if let Some(b) = backend {
                    pairs.push(("backend", Json::Str(b.as_str().to_string())));
                }
                if let Some(q) = quant {
                    pairs.push(("quant", Json::Str(q.clone())));
                }
            }
            Request::Compare {
                model,
                batch,
                backend,
                quant,
            } => {
                model.push_wire_field(&mut pairs);
                pairs.push(("batch", Json::uint(*batch)));
                if let Some(b) = backend {
                    pairs.push(("backend", Json::Str(b.as_str().to_string())));
                }
                if let Some(q) = quant {
                    pairs.push(("quant", Json::Str(q.clone())));
                }
            }
            Request::Asm {
                model,
                batch,
                arch,
                layer,
            } => {
                model.push_wire_field(&mut pairs);
                pairs.push(("batch", Json::uint(*batch)));
                pairs.push(("arch", Json::Str(arch.as_str().to_string())));
                if let Some(l) = layer {
                    pairs.push(("layer", Json::Str(l.clone())));
                }
            }
            Request::Sweep {
                model,
                axis,
                backend,
                quant,
            } => {
                model.push_wire_field(&mut pairs);
                pairs.push(("axis", Json::Str(axis.as_str().to_string())));
                if let Some(b) = backend {
                    pairs.push(("backend", Json::Str(b.as_str().to_string())));
                }
                if let Some(q) = quant {
                    pairs.push(("quant", Json::Str(q.clone())));
                }
            }
            Request::Dse(p) => {
                pairs.push(("rows", uint_arr(&p.rows)));
                pairs.push(("cols", uint_arr(&p.cols)));
                pairs.push(("ibuf_kb", uint_arr(&p.ibuf_kb)));
                pairs.push(("wbuf_kb", uint_arr(&p.wbuf_kb)));
                pairs.push(("obuf_kb", uint_arr(&p.obuf_kb)));
                pairs.push(("bandwidth", uint_arr(&p.bandwidth)));
                pairs.push(("batches", uint_arr(&p.batches)));
                pairs.push((
                    "quants",
                    Json::Arr(p.quants.iter().map(|q| Json::Str(q.clone())).collect()),
                ));
                if let Some(networks) = &p.networks {
                    pairs.push((
                        "networks",
                        Json::Arr(networks.iter().map(|n| Json::Str(n.clone())).collect()),
                    ));
                }
                if !p.models.is_empty() {
                    pairs.push((
                        "models",
                        Json::Arr(p.models.iter().map(export_model).collect()),
                    ));
                }
                pairs.push(("workers", Json::uint(p.workers)));
                if let Some(b) = p.backend {
                    pairs.push(("backend", Json::Str(b.as_str().to_string())));
                }
                if p.resume {
                    pairs.push(("resume", Json::Bool(true)));
                }
            }
            Request::Quantize { model, quant } => {
                model.push_wire_field(&mut pairs);
                if let Some(q) = quant {
                    pairs.push(("quant", Json::Str(q.clone())));
                }
            }
            Request::Stats | Request::Shutdown => {}
        }
        Json::obj(pairs)
    }

    /// Encodes to the single-line wire form.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Reads a request back from a wire document.
    ///
    /// # Errors
    ///
    /// Describes the missing or ill-typed field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let cmd = str_field(doc, "cmd")?;
        // Reject unrecognized keys: a typo'd field (`bacth`) must be an
        // error, not a silently applied default, mirroring the CLI's
        // unknown-flag behaviour.
        let allowed: &[&str] = match cmd.as_str() {
            "list" => &[],
            "report" => &[
                "benchmark", "model", "batch", "bandwidth", "arch", "backend", "quant",
            ],
            "compare" => &["benchmark", "model", "batch", "backend", "quant"],
            "asm" => &["benchmark", "model", "batch", "arch", "layer"],
            "sweep" => &["benchmark", "model", "axis", "backend", "quant"],
            "dse" => &[
                "rows", "cols", "ibuf_kb", "wbuf_kb", "obuf_kb", "bandwidth", "batches",
                "quants", "networks", "models", "workers", "backend", "resume",
            ],
            "quantize" => &["benchmark", "model", "quant"],
            "stats" => &[],
            "shutdown" => &[],
            other => {
                return Err(format!(
                    "unknown cmd `{other}` (list|report|compare|asm|sweep|dse|quantize|stats|shutdown)"
                ))
            }
        };
        if let Json::Obj(pairs) = doc {
            for (k, _) in pairs {
                if k != "cmd" && !allowed.contains(&k.as_str()) {
                    return Err(if allowed.is_empty() {
                        format!("unknown field `{k}` for `{cmd}` (takes no fields)")
                    } else {
                        format!(
                            "unknown field `{k}` for `{cmd}` (allowed: {})",
                            allowed.join(", ")
                        )
                    });
                }
            }
        }
        match cmd.as_str() {
            "list" => Ok(Request::List),
            "report" => Ok(Request::Report {
                model: ModelSource::from_doc(doc)?,
                batch: opt_u64_field(doc, "batch")?.unwrap_or(16),
                bandwidth: match opt_u64_field(doc, "bandwidth")? {
                    Some(bw) => Some(
                        u32::try_from(bw).map_err(|_| "bandwidth out of range".to_string())?,
                    ),
                    None => None,
                },
                arch: match opt_str_field(doc, "arch")? {
                    Some(s) => ArchPreset::parse(&s)?,
                    None => ArchPreset::default(),
                },
                backend: opt_backend(doc)?,
                quant: opt_str_field(doc, "quant")?,
            }),
            "compare" => Ok(Request::Compare {
                model: ModelSource::from_doc(doc)?,
                batch: opt_u64_field(doc, "batch")?.unwrap_or(16),
                backend: opt_backend(doc)?,
                quant: opt_str_field(doc, "quant")?,
            }),
            "asm" => Ok(Request::Asm {
                model: ModelSource::from_doc(doc)?,
                batch: opt_u64_field(doc, "batch")?.unwrap_or(16),
                arch: match opt_str_field(doc, "arch")? {
                    Some(s) => ArchPreset::parse(&s)?,
                    None => ArchPreset::default(),
                },
                layer: opt_str_field(doc, "layer")?,
            }),
            "sweep" => Ok(Request::Sweep {
                model: ModelSource::from_doc(doc)?,
                axis: SweepAxis::parse(&str_field(doc, "axis")?)?,
                backend: opt_backend(doc)?,
                quant: opt_str_field(doc, "quant")?,
            }),
            "dse" => {
                let d = DseParams::default();
                Ok(Request::Dse(DseParams {
                    rows: opt_uint_arr(doc, "rows")?.unwrap_or(d.rows),
                    cols: opt_uint_arr(doc, "cols")?.unwrap_or(d.cols),
                    ibuf_kb: opt_uint_arr(doc, "ibuf_kb")?.unwrap_or(d.ibuf_kb),
                    wbuf_kb: opt_uint_arr(doc, "wbuf_kb")?.unwrap_or(d.wbuf_kb),
                    obuf_kb: opt_uint_arr(doc, "obuf_kb")?.unwrap_or(d.obuf_kb),
                    bandwidth: opt_uint_arr(doc, "bandwidth")?.unwrap_or(d.bandwidth),
                    batches: opt_uint_arr(doc, "batches")?.unwrap_or(d.batches),
                    quants: match doc.get("quants") {
                        None => d.quants,
                        Some(v) => v
                            .as_arr()
                            .ok_or("quants must be an array")?
                            .iter()
                            .map(|q| {
                                q.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| "quants entries must be strings".to_string())
                            })
                            .collect::<Result<_, _>>()?,
                    },
                    networks: match doc.get("networks") {
                        None => None,
                        Some(v) => Some(
                            v.as_arr()
                                .ok_or("networks must be an array")?
                                .iter()
                                .map(|n| {
                                    n.as_str()
                                        .map(str::to_string)
                                        .ok_or_else(|| "networks entries must be strings".to_string())
                                })
                                .collect::<Result<_, _>>()?,
                        ),
                    },
                    models: match doc.get("models") {
                        None => Vec::new(),
                        Some(v) => v
                            .as_arr()
                            .ok_or("models must be an array")?
                            .iter()
                            .map(model_from_json)
                            .collect::<Result<_, _>>()?,
                    },
                    workers: opt_u64_field(doc, "workers")?.unwrap_or(0),
                    backend: opt_backend(doc)?,
                    resume: match doc.get("resume") {
                        None => false,
                        Some(v) => v.as_bool().ok_or("resume must be a boolean")?,
                    },
                }))
            }
            "quantize" => Ok(Request::Quantize {
                model: ModelSource::from_doc(doc)?,
                quant: opt_str_field(doc, "quant")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown cmd `{other}` (list|report|compare|asm|sweep|dse|quantize|stats|shutdown)"
            )),
        }
    }

    /// Parses a request from its wire text.
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors with a byte offset, and protocol errors
    /// naming the offending field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = parse_json(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Request::from_json(&doc)
    }
}

/// An architecture as the protocol reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchInfo {
    /// Configuration name.
    pub name: String,
    /// Array rows.
    pub rows: u64,
    /// Array columns.
    pub cols: u64,
    /// IBUF capacity in KB.
    pub ibuf_kb: u64,
    /// WBUF capacity in KB.
    pub wbuf_kb: u64,
    /// OBUF capacity in KB.
    pub obuf_kb: u64,
    /// Off-chip bandwidth in bits/cycle.
    pub bandwidth_bits_per_cycle: u64,
    /// Clock frequency in MHz.
    pub freq_mhz: u64,
}

impl ArchInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("rows", Json::uint(self.rows)),
            ("cols", Json::uint(self.cols)),
            ("ibuf_kb", Json::uint(self.ibuf_kb)),
            ("wbuf_kb", Json::uint(self.wbuf_kb)),
            ("obuf_kb", Json::uint(self.obuf_kb)),
            (
                "bandwidth_bits_per_cycle",
                Json::uint(self.bandwidth_bits_per_cycle),
            ),
            ("freq_mhz", Json::uint(self.freq_mhz)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(ArchInfo {
            name: str_field(doc, "name")?,
            rows: u64_field(doc, "rows")?,
            cols: u64_field(doc, "cols")?,
            ibuf_kb: u64_field(doc, "ibuf_kb")?,
            wbuf_kb: u64_field(doc, "wbuf_kb")?,
            obuf_kb: u64_field(doc, "obuf_kb")?,
            bandwidth_bits_per_cycle: u64_field(doc, "bandwidth_bits_per_cycle")?,
            freq_mhz: u64_field(doc, "freq_mhz")?,
        })
    }
}

/// An energy breakdown on the wire (the Figure 14 categories, in pJ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyInfo {
    /// Datapath energy.
    pub compute_pj: f64,
    /// On-chip buffer energy.
    pub buffer_pj: f64,
    /// Register/pipeline-register energy.
    pub rf_pj: f64,
    /// Off-chip DRAM energy.
    pub dram_pj: f64,
}

impl EnergyInfo {
    /// Total across the four categories.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.buffer_pj + self.rf_pj + self.dram_pj
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("compute_pj", Json::float(self.compute_pj)),
            ("buffer_pj", Json::float(self.buffer_pj)),
            ("rf_pj", Json::float(self.rf_pj)),
            ("dram_pj", Json::float(self.dram_pj)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(EnergyInfo {
            compute_pj: f64_field(doc, "compute_pj")?,
            buffer_pj: f64_field(doc, "buffer_pj")?,
            rf_pj: f64_field(doc, "rf_pj")?,
            dram_pj: f64_field(doc, "dram_pj")?,
        })
    }
}

/// Stall attribution on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallInfo {
    /// Cycles the array starved for off-chip data.
    pub bandwidth_starved: u64,
    /// Cycles the DMA engine waited on compute.
    pub compute_starved: u64,
    /// Systolic fill/drain cycles.
    pub fill_drain: u64,
}

impl StallInfo {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("bandwidth_starved", Json::uint(self.bandwidth_starved)),
            ("compute_starved", Json::uint(self.compute_starved)),
            ("fill_drain", Json::uint(self.fill_drain)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(StallInfo {
            bandwidth_starved: u64_field(doc, "bandwidth_starved")?,
            compute_starved: u64_field(doc, "compute_starved")?,
            fill_drain: u64_field(doc, "fill_drain")?,
        })
    }
}

/// One layer's result inside a [`Response::Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// Layer/group name.
    pub name: String,
    /// Total cycles.
    pub cycles: u64,
    /// Compute-model cycles.
    pub compute_cycles: u64,
    /// DMA-model cycles.
    pub dma_cycles: u64,
    /// Multiply-accumulates.
    pub macs: u64,
    /// Off-chip bits moved.
    pub dram_bits: u64,
    /// Whether the layer was bandwidth-bound.
    pub bandwidth_bound: bool,
}

impl LayerInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("cycles", Json::uint(self.cycles)),
            ("compute_cycles", Json::uint(self.compute_cycles)),
            ("dma_cycles", Json::uint(self.dma_cycles)),
            ("macs", Json::uint(self.macs)),
            ("dram_bits", Json::uint(self.dram_bits)),
            ("bandwidth_bound", Json::Bool(self.bandwidth_bound)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(LayerInfo {
            name: str_field(doc, "name")?,
            cycles: u64_field(doc, "cycles")?,
            compute_cycles: u64_field(doc, "compute_cycles")?,
            dma_cycles: u64_field(doc, "dma_cycles")?,
            macs: u64_field(doc, "macs")?,
            dram_bits: u64_field(doc, "dram_bits")?,
            bandwidth_bound: doc
                .get("bandwidth_bound")
                .and_then(Json::as_bool)
                .ok_or("missing field `bandwidth_bound`")?,
        })
    }
}

/// One zoo entry inside a [`Response::Benchmarks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Display name.
    pub name: String,
    /// Layer count.
    pub layers: u64,
    /// MACs per input.
    pub macs: u64,
    /// Weight storage in bytes.
    pub weight_bytes: u64,
}

impl BenchmarkInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("layers", Json::uint(self.layers)),
            ("macs", Json::uint(self.macs)),
            ("weight_bytes", Json::uint(self.weight_bytes)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(BenchmarkInfo {
            name: str_field(doc, "name")?,
            layers: u64_field(doc, "layers")?,
            macs: u64_field(doc, "macs")?,
            weight_bytes: u64_field(doc, "weight_bytes")?,
        })
    }
}

/// The full result of a `report` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportReply {
    /// Benchmark display name.
    pub benchmark: String,
    /// Batch size simulated.
    pub batch: u64,
    /// Backend that ran.
    pub backend: BackendChoice,
    /// Quantization override the request named (canonical spelling),
    /// absent for the paper default.
    pub quant: Option<String>,
    /// The architecture simulated.
    pub arch: ArchInfo,
    /// Total cycles for the batch.
    pub cycles: u64,
    /// Total MACs.
    pub macs: u64,
    /// Total off-chip bits.
    pub dram_bits: u64,
    /// Latency per input in milliseconds.
    pub latency_ms_per_input: f64,
    /// Achieved MACs per cycle.
    pub macs_per_cycle: f64,
    /// Energy per input.
    pub energy_per_input: EnergyInfo,
    /// Whole-run stall attribution.
    pub stalls: StallInfo,
    /// Layer evaluations answered by a layer-tier key another layer of the
    /// same plan also resolves to (repeated shapes — e.g. ResNet basic
    /// blocks). Spec-level and warmth-independent, like
    /// [`DseReply::compile_hits`].
    pub layer_hits: u64,
    /// Unique layer-tier keys the plan resolves to — the evaluations a
    /// cold session would perform.
    pub layer_misses: u64,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerInfo>,
}

/// One baseline entry inside a [`Response::Compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Baseline name.
    pub name: String,
    /// Bit Fusion's speedup over the baseline.
    pub speedup: f64,
    /// Baseline-energy / BitFusion-energy, when the baseline has an energy
    /// model.
    pub energy_ratio: Option<f64>,
}

impl BaselineComparison {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("speedup", Json::float(self.speedup)),
        ];
        if let Some(r) = self.energy_ratio {
            pairs.push(("energy_ratio", Json::float(r)));
        }
        Json::obj(pairs)
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(BaselineComparison {
            name: str_field(doc, "name")?,
            speedup: f64_field(doc, "speedup")?,
            energy_ratio: match doc.get("energy_ratio") {
                None => None,
                Some(v) => Some(v.as_f64().ok_or("energy_ratio must be a number")?),
            },
        })
    }
}

/// The full result of a `compare` request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReply {
    /// Benchmark display name.
    pub benchmark: String,
    /// Batch size.
    pub batch: u64,
    /// Backend that ran the Bit Fusion side.
    pub backend: BackendChoice,
    /// Quantization override applied to the Bit Fusion and Stripes sides,
    /// absent for the paper default.
    pub quant: Option<String>,
    /// Bit Fusion latency per input, 45 nm configuration, in ms.
    pub latency_ms_per_input: f64,
    /// Bit Fusion energy per input, 45 nm configuration.
    pub energy_per_input: EnergyInfo,
    /// Per-baseline comparisons.
    pub baselines: Vec<BaselineComparison>,
}

/// One disassembled block inside a [`Response::Asm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmBlock {
    /// Layer/group name the block implements.
    pub layer: String,
    /// Fusion-ISA assembly text.
    pub text: String,
}

/// The full result of an `asm` request.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmReply {
    /// Benchmark display name.
    pub benchmark: String,
    /// Batch size compiled for.
    pub batch: u64,
    /// Blocks in execution order (filtered when the request named a layer).
    pub blocks: Vec<AsmBlock>,
}

/// One point inside a [`Response::Sweep`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPointInfo {
    /// The swept value (batch size or bits/cycle).
    pub value: u64,
    /// Total cycles at that value.
    pub cycles: u64,
    /// Cycles per input at that value.
    pub cycles_per_input: f64,
    /// Speedup vs the axis baseline (total for bandwidth, per-input for
    /// batch).
    pub speedup: f64,
}

impl SweepPointInfo {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("value", Json::uint(self.value)),
            ("cycles", Json::uint(self.cycles)),
            ("cycles_per_input", Json::float(self.cycles_per_input)),
            ("speedup", Json::float(self.speedup)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(SweepPointInfo {
            value: u64_field(doc, "value")?,
            cycles: u64_field(doc, "cycles")?,
            cycles_per_input: f64_field(doc, "cycles_per_input")?,
            speedup: f64_field(doc, "speedup")?,
        })
    }
}

/// The full result of a `sweep` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReply {
    /// Benchmark display name.
    pub benchmark: String,
    /// The swept axis.
    pub axis: SweepAxis,
    /// Backend that ran.
    pub backend: BackendChoice,
    /// Quantization override the request named, absent for the paper
    /// default.
    pub quant: Option<String>,
    /// The baseline value speedups are relative to.
    pub baseline: u64,
    /// Layer evaluations across the sweep answered by a layer-tier key
    /// another layer of the same sweep also resolves to. Spec-level and
    /// warmth-independent, like [`DseReply::compile_hits`].
    pub layer_hits: u64,
    /// Unique layer-tier keys the sweep resolves to.
    pub layer_misses: u64,
    /// Points in sweep order.
    pub points: Vec<SweepPointInfo>,
}

/// One Pareto-frontier entry inside a [`Response::Dse`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The architecture.
    pub arch: ArchInfo,
    /// Quantization policy of the candidate (canonical spelling).
    pub quant: String,
    /// Cycles summed over the workload suite.
    pub cycles: u64,
    /// Energy summed over the workload suite, in pJ.
    pub energy_pj: f64,
    /// Chip area in mm².
    pub area_mm2: f64,
    /// Bandwidth-starved stall cycles over the suite.
    pub bandwidth_starved: u64,
    /// Compute-starved stall cycles over the suite.
    pub compute_starved: u64,
}

impl FrontierPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("arch", self.arch.to_json()),
            ("quant", Json::Str(self.quant.clone())),
            ("cycles", Json::uint(self.cycles)),
            ("energy_pj", Json::float(self.energy_pj)),
            ("area_mm2", Json::float(self.area_mm2)),
            ("bandwidth_starved", Json::uint(self.bandwidth_starved)),
            ("compute_starved", Json::uint(self.compute_starved)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(FrontierPoint {
            arch: ArchInfo::from_json(doc.get("arch").ok_or("missing field `arch`")?)?,
            quant: str_field(doc, "quant")?,
            cycles: u64_field(doc, "cycles")?,
            energy_pj: f64_field(doc, "energy_pj")?,
            area_mm2: f64_field(doc, "area_mm2")?,
            bandwidth_starved: u64_field(doc, "bandwidth_starved")?,
            compute_starved: u64_field(doc, "compute_starved")?,
        })
    }
}

/// One infeasible corner reported inside a [`Response::Dse`] (the reply
/// carries a bounded sample; the count covers the rest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleInfo {
    /// Network that failed at this corner.
    pub model: String,
    /// The architecture, in its display form.
    pub arch: String,
    /// Why the point is infeasible.
    pub error: String,
}

impl InfeasibleInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", Json::Str(self.model.clone())),
            ("arch", Json::Str(self.arch.clone())),
            ("error", Json::Str(self.error.clone())),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(InfeasibleInfo {
            model: str_field(doc, "model")?,
            arch: str_field(doc, "arch")?,
            error: str_field(doc, "error")?,
        })
    }
}

/// One entry of a `dse` reply's quantization comparison: how one policy
/// fares against the baseline on one network, summed over every
/// architecture and batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSpeedupInfo {
    /// Network name.
    pub model: String,
    /// The candidate quantization policy.
    pub quant: String,
    /// `baseline cycles / candidate cycles` (> 1 means faster).
    pub speedup: f64,
    /// `baseline energy / candidate energy` (> 1 means less energy).
    pub energy_ratio: f64,
}

impl QuantSpeedupInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", Json::Str(self.model.clone())),
            ("quant", Json::Str(self.quant.clone())),
            ("speedup", Json::float(self.speedup)),
            ("energy_ratio", Json::float(self.energy_ratio)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(QuantSpeedupInfo {
            model: str_field(doc, "model")?,
            quant: str_field(doc, "quant")?,
            speedup: f64_field(doc, "speedup")?,
            energy_ratio: f64_field(doc, "energy_ratio")?,
        })
    }
}

/// The full result of a `dse` request.
#[derive(Debug, Clone, PartialEq)]
pub struct DseReply {
    /// Backend that ran the evaluations.
    pub backend: BackendChoice,
    /// Quantization policies explored (canonical spellings, spec order).
    pub quants: Vec<String>,
    /// The policy [`DseReply::quant_speedups`] is measured against
    /// (`uniform8` when explored, the first policy otherwise); absent when
    /// only one policy was explored.
    pub speedup_baseline: Option<String>,
    /// Per-network speedup/energy of every non-baseline policy vs the
    /// baseline; empty when only one policy was explored.
    pub quant_speedups: Vec<QuantSpeedupInfo>,
    /// Architectures in the grid.
    pub grid_points: u64,
    /// Points evaluated.
    pub points: u64,
    /// Points that failed validation or compilation.
    pub infeasible: u64,
    /// The first few infeasible corners with their reasons (spec order,
    /// bounded sample).
    pub infeasible_sample: Vec<InfeasibleInfo>,
    /// Compilable points served by an artifact another point of the same
    /// spec also resolves to. Spec-level and warmth-independent (not a
    /// cache counter): the same request always reports the same number,
    /// whatever the session's cache already holds.
    pub compile_hits: u64,
    /// Unique compilation artifacts the spec resolves to — the
    /// compilations a cold session would perform. Also spec-level; a warm
    /// session may compile fewer, but the reply does not change (see the
    /// determinism contract in `bitfusion_service::session`).
    pub compile_misses: u64,
    /// Layer evaluations answered by a layer-tier key another layer of the
    /// same spec also resolves to — repeated shapes within a network,
    /// duplicate models, aliasing quant specs. Spec-level and
    /// warmth-independent, like [`DseReply::compile_hits`].
    pub layer_hits: u64,
    /// Unique layer-tier keys the spec resolves to — the per-layer
    /// evaluations a cold session would perform.
    pub layer_misses: u64,
    /// The Pareto frontier over (cycles, energy, area), in grid order.
    pub frontier: Vec<FrontierPoint>,
}

/// One multiplying layer's assignment inside a [`Response::Quantize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantLayerInfo {
    /// Layer name.
    pub name: String,
    /// Layer kind tag (`conv`, `fc`, `lstm`, `rnn`).
    pub kind: String,
    /// Assigned input (activation) bits.
    pub input_bits: u64,
    /// Assigned weight bits.
    pub weight_bits: u64,
    /// Multiply-accumulates the layer performs per input.
    pub macs: u64,
}

impl QuantLayerInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("input_bits", Json::uint(self.input_bits)),
            ("weight_bits", Json::uint(self.weight_bits)),
            ("macs", Json::uint(self.macs)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(QuantLayerInfo {
            name: str_field(doc, "name")?,
            kind: str_field(doc, "kind")?,
            input_bits: u64_field(doc, "input_bits")?,
            weight_bits: u64_field(doc, "weight_bits")?,
            macs: u64_field(doc, "macs")?,
        })
    }
}

/// The full result of a `quantize` request: the per-layer assignment a
/// policy produces on one benchmark, plus its storage footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizeReply {
    /// Benchmark display name.
    pub benchmark: String,
    /// The resolved policy (canonical spelling).
    pub quant: String,
    /// Total multiply-accumulates per input (shape-derived, policy
    /// independent).
    pub total_macs: u64,
    /// Weight storage in bytes at the assigned widths.
    pub weight_bytes: u64,
    /// Fraction of MACs whose input and weight widths are ≤ 4 bits (the
    /// paper's Figure 1 statistic).
    pub share_le_4bit: f64,
    /// Per-layer assignments in execution order (multiplying layers
    /// only).
    pub layers: Vec<QuantLayerInfo>,
}

/// One cache tier's live counters inside a [`Response::Stats`].
///
/// Unlike the spec-level `layer_cache` counters on `report`/`sweep`/`dse`
/// replies, these are the process-global cache's actual state and depend
/// on everything the server has evaluated so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheTierInfo {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: u64,
    /// Maximum resident entries.
    pub capacity: u64,
}

impl CacheTierInfo {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("hits", Json::uint(self.hits)),
            ("misses", Json::uint(self.misses)),
            ("evictions", Json::uint(self.evictions)),
            ("len", Json::uint(self.len)),
            ("capacity", Json::uint(self.capacity)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(CacheTierInfo {
            hits: u64_field(doc, "hits")?,
            misses: u64_field(doc, "misses")?,
            evictions: u64_field(doc, "evictions")?,
            len: u64_field(doc, "len")?,
            capacity: u64_field(doc, "capacity")?,
        })
    }
}

/// Request-latency percentiles inside a [`Response::Stats`], derived from
/// the server's fixed-bucket histogram.
///
/// Percentiles are bucket upper bounds (powers of two in microseconds),
/// so they are conservative: the reported pNN is ≥ the true pNN. All
/// zeros when no request has completed yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyInfo {
    /// Requests recorded (admitted requests only; shed requests are not
    /// timed).
    pub count: u64,
    /// 50th-percentile latency upper bound, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency upper bound, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
    /// Exact slowest observed request, microseconds.
    pub max_us: u64,
}

impl LatencyInfo {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("count", Json::uint(self.count)),
            ("p50_us", Json::uint(self.p50_us)),
            ("p90_us", Json::uint(self.p90_us)),
            ("p99_us", Json::uint(self.p99_us)),
            ("max_us", Json::uint(self.max_us)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(LatencyInfo {
            count: u64_field(doc, "count")?,
            p50_us: u64_field(doc, "p50_us")?,
            p90_us: u64_field(doc, "p90_us")?,
            p99_us: u64_field(doc, "p99_us")?,
            max_us: u64_field(doc, "max_us")?,
        })
    }
}

/// The persistent disk tier's live counters inside a [`Response::Stats`],
/// present only when the server was started with `--cache-dir`.
///
/// Disk hits are a subset of the memory tiers' misses: a lookup that
/// misses in memory but loads from disk counts as a memory miss *and* a
/// disk hit, so the memory-tier counters keep their meaning unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStoreInfo {
    /// Compiled-plan entries served from disk.
    pub plan_hits: u64,
    /// Compiled-plan lookups that found no usable entry on disk.
    pub plan_misses: u64,
    /// Layer-result entries served from disk.
    pub layer_hits: u64,
    /// Layer-result lookups that found no usable entry on disk.
    pub layer_misses: u64,
    /// DSE checkpoint points served from disk.
    pub point_hits: u64,
    /// DSE checkpoint lookups that found no usable entry on disk.
    pub point_misses: u64,
    /// Entries written (write-behind) since startup.
    pub writes: u64,
    /// Entries quarantined as corrupt (checksum, format, or decode
    /// failure) and recomputed.
    pub corrupt: u64,
}

impl DiskStoreInfo {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("plan_hits", Json::uint(self.plan_hits)),
            ("plan_misses", Json::uint(self.plan_misses)),
            ("layer_hits", Json::uint(self.layer_hits)),
            ("layer_misses", Json::uint(self.layer_misses)),
            ("point_hits", Json::uint(self.point_hits)),
            ("point_misses", Json::uint(self.point_misses)),
            ("writes", Json::uint(self.writes)),
            ("corrupt", Json::uint(self.corrupt)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(DiskStoreInfo {
            plan_hits: u64_field(doc, "plan_hits")?,
            plan_misses: u64_field(doc, "plan_misses")?,
            layer_hits: u64_field(doc, "layer_hits")?,
            layer_misses: u64_field(doc, "layer_misses")?,
            point_hits: u64_field(doc, "point_hits")?,
            point_misses: u64_field(doc, "point_misses")?,
            writes: u64_field(doc, "writes")?,
            corrupt: u64_field(doc, "corrupt")?,
        })
    }
}

/// The full result of a `stats` request: the network server's live
/// counters.
///
/// This reply is the deliberate exception to the byte-determinism
/// contract — it reports live process state and two identical `stats`
/// requests may answer differently. It still carries no timestamps, so a
/// quiesced server answers reproducibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections accepted since startup.
    pub connections_total: u64,
    /// Workload requests received (parse failures included; server-level
    /// `stats`/`shutdown` requests are answered but not counted, so
    /// polling `stats` never perturbs what it reports).
    pub received: u64,
    /// Requests answered with a non-`error` reply.
    pub ok: u64,
    /// Requests answered with an `error` reply (parse failures, shed
    /// requests, and evaluation errors).
    pub errors: u64,
    /// Requests refused by admission control (a subset of `errors`).
    pub shed: u64,
    /// Requests that rode an identical in-flight evaluation instead of
    /// evaluating themselves.
    pub coalesced: u64,
    /// Admissions currently waiting for a slot.
    pub queue_depth: u64,
    /// Maximum admissions that may wait before shedding starts.
    pub queue_capacity: u64,
    /// Requests currently evaluating.
    pub in_flight: u64,
    /// Evaluation slots (the admission gate's concurrency bound).
    pub workers: u64,
    /// The compiled-plan cache tier (live counters).
    pub artifact_cache: CacheTierInfo,
    /// The layer-result cache tier (live counters).
    pub layer_cache: CacheTierInfo,
    /// Request-latency percentiles.
    pub latency: LatencyInfo,
    /// The persistent disk tier's counters; `None` when the server runs
    /// without `--cache-dir`.
    pub disk: Option<DiskStoreInfo>,
}

/// The result of one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `list`.
    Benchmarks {
        /// The zoo, in paper order.
        benchmarks: Vec<BenchmarkInfo>,
        /// Preset architecture descriptions.
        architectures: Vec<String>,
    },
    /// Answer to `report`.
    Report(ReportReply),
    /// Answer to `compare`.
    Compare(CompareReply),
    /// Answer to `asm`.
    Asm(AsmReply),
    /// Answer to `sweep`.
    Sweep(SweepReply),
    /// Answer to `dse`.
    Dse(DseReply),
    /// Answer to `quantize`.
    Quantize(QuantizeReply),
    /// Answer to `stats` (network server only).
    Stats(StatsReply),
    /// Answer to `shutdown` (network server, unix socket only): the
    /// server acknowledged and is draining.
    Shutdown,
    /// The request could not be served.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// The response's `reply` discriminant.
    pub const fn reply(&self) -> &'static str {
        match self {
            Response::Benchmarks { .. } => "list",
            Response::Report(_) => "report",
            Response::Compare(_) => "compare",
            Response::Asm(_) => "asm",
            Response::Sweep(_) => "sweep",
            Response::Dse(_) => "dse",
            Response::Quantize(_) => "quantize",
            Response::Stats(_) => "stats",
            Response::Shutdown => "shutdown",
            Response::Error { .. } => "error",
        }
    }

    /// Converts to the wire document.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("reply", Json::Str(self.reply().to_string()))];
        match self {
            Response::Benchmarks {
                benchmarks,
                architectures,
            } => {
                pairs.push((
                    "benchmarks",
                    Json::Arr(benchmarks.iter().map(BenchmarkInfo::to_json).collect()),
                ));
                pairs.push((
                    "architectures",
                    Json::Arr(
                        architectures
                            .iter()
                            .map(|a| Json::Str(a.clone()))
                            .collect(),
                    ),
                ));
            }
            Response::Report(r) => {
                pairs.push(("benchmark", Json::Str(r.benchmark.clone())));
                pairs.push(("batch", Json::uint(r.batch)));
                pairs.push(("backend", Json::Str(r.backend.as_str().to_string())));
                if let Some(q) = &r.quant {
                    pairs.push(("quant", Json::Str(q.clone())));
                }
                pairs.push(("arch", r.arch.to_json()));
                pairs.push(("cycles", Json::uint(r.cycles)));
                pairs.push(("macs", Json::uint(r.macs)));
                pairs.push(("dram_bits", Json::uint(r.dram_bits)));
                pairs.push(("latency_ms_per_input", Json::float(r.latency_ms_per_input)));
                pairs.push(("macs_per_cycle", Json::float(r.macs_per_cycle)));
                pairs.push(("energy_per_input", r.energy_per_input.to_json()));
                pairs.push(("stalls", r.stalls.to_json()));
                pairs.push(("layer_cache", layer_cache_json(r.layer_hits, r.layer_misses)));
                pairs.push((
                    "layers",
                    Json::Arr(r.layers.iter().map(LayerInfo::to_json).collect()),
                ));
            }
            Response::Compare(r) => {
                pairs.push(("benchmark", Json::Str(r.benchmark.clone())));
                pairs.push(("batch", Json::uint(r.batch)));
                pairs.push(("backend", Json::Str(r.backend.as_str().to_string())));
                if let Some(q) = &r.quant {
                    pairs.push(("quant", Json::Str(q.clone())));
                }
                pairs.push(("latency_ms_per_input", Json::float(r.latency_ms_per_input)));
                pairs.push(("energy_per_input", r.energy_per_input.to_json()));
                pairs.push((
                    "baselines",
                    Json::Arr(r.baselines.iter().map(BaselineComparison::to_json).collect()),
                ));
            }
            Response::Asm(r) => {
                pairs.push(("benchmark", Json::Str(r.benchmark.clone())));
                pairs.push(("batch", Json::uint(r.batch)));
                pairs.push((
                    "blocks",
                    Json::Arr(
                        r.blocks
                            .iter()
                            .map(|b| {
                                Json::obj(vec![
                                    ("layer", Json::Str(b.layer.clone())),
                                    ("text", Json::Str(b.text.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Response::Sweep(r) => {
                pairs.push(("benchmark", Json::Str(r.benchmark.clone())));
                pairs.push(("axis", Json::Str(r.axis.as_str().to_string())));
                pairs.push(("backend", Json::Str(r.backend.as_str().to_string())));
                if let Some(q) = &r.quant {
                    pairs.push(("quant", Json::Str(q.clone())));
                }
                pairs.push(("baseline", Json::uint(r.baseline)));
                pairs.push(("layer_cache", layer_cache_json(r.layer_hits, r.layer_misses)));
                pairs.push((
                    "points",
                    Json::Arr(r.points.iter().map(|p| p.to_json()).collect()),
                ));
            }
            Response::Dse(r) => {
                pairs.push(("backend", Json::Str(r.backend.as_str().to_string())));
                pairs.push((
                    "quants",
                    Json::Arr(r.quants.iter().map(|q| Json::Str(q.clone())).collect()),
                ));
                if let Some(b) = &r.speedup_baseline {
                    pairs.push(("speedup_baseline", Json::Str(b.clone())));
                }
                if !r.quant_speedups.is_empty() {
                    pairs.push((
                        "quant_speedups",
                        Json::Arr(
                            r.quant_speedups
                                .iter()
                                .map(QuantSpeedupInfo::to_json)
                                .collect(),
                        ),
                    ));
                }
                pairs.push(("grid_points", Json::uint(r.grid_points)));
                pairs.push(("points", Json::uint(r.points)));
                pairs.push(("infeasible", Json::uint(r.infeasible)));
                if !r.infeasible_sample.is_empty() {
                    pairs.push((
                        "infeasible_sample",
                        Json::Arr(r.infeasible_sample.iter().map(InfeasibleInfo::to_json).collect()),
                    ));
                }
                pairs.push((
                    "compile",
                    Json::obj(vec![
                        ("hits", Json::uint(r.compile_hits)),
                        ("misses", Json::uint(r.compile_misses)),
                    ]),
                ));
                pairs.push(("layer_cache", layer_cache_json(r.layer_hits, r.layer_misses)));
                pairs.push((
                    "frontier",
                    Json::Arr(r.frontier.iter().map(FrontierPoint::to_json).collect()),
                ));
            }
            Response::Quantize(r) => {
                pairs.push(("benchmark", Json::Str(r.benchmark.clone())));
                pairs.push(("quant", Json::Str(r.quant.clone())));
                pairs.push(("total_macs", Json::uint(r.total_macs)));
                pairs.push(("weight_bytes", Json::uint(r.weight_bytes)));
                pairs.push(("share_le_4bit", Json::float(r.share_le_4bit)));
                pairs.push((
                    "layers",
                    Json::Arr(r.layers.iter().map(QuantLayerInfo::to_json).collect()),
                ));
            }
            Response::Stats(r) => {
                pairs.push((
                    "connections",
                    Json::obj(vec![
                        ("active", Json::uint(r.connections_active)),
                        ("total", Json::uint(r.connections_total)),
                    ]),
                ));
                pairs.push((
                    "requests",
                    Json::obj(vec![
                        ("received", Json::uint(r.received)),
                        ("ok", Json::uint(r.ok)),
                        ("errors", Json::uint(r.errors)),
                        ("shed", Json::uint(r.shed)),
                        ("coalesced", Json::uint(r.coalesced)),
                    ]),
                ));
                pairs.push((
                    "queue",
                    Json::obj(vec![
                        ("depth", Json::uint(r.queue_depth)),
                        ("capacity", Json::uint(r.queue_capacity)),
                        ("in_flight", Json::uint(r.in_flight)),
                        ("workers", Json::uint(r.workers)),
                    ]),
                ));
                pairs.push(("artifact_cache", r.artifact_cache.to_json()));
                pairs.push(("layer_cache", r.layer_cache.to_json()));
                pairs.push(("latency_us", r.latency.to_json()));
                if let Some(disk) = r.disk {
                    pairs.push(("disk_store", disk.to_json()));
                }
            }
            Response::Shutdown => {}
            Response::Error { message } => {
                pairs.push(("message", Json::Str(message.clone())));
            }
        }
        Json::obj(pairs)
    }

    /// Encodes to the single-line wire form — exactly what `--json` prints
    /// and the `serve` loop writes per response.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Reads a response back from a wire document.
    ///
    /// # Errors
    ///
    /// Describes the missing or ill-typed field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let reply = str_field(doc, "reply")?;
        match reply.as_str() {
            "list" => Ok(Response::Benchmarks {
                benchmarks: doc
                    .get("benchmarks")
                    .and_then(Json::as_arr)
                    .ok_or("missing field `benchmarks`")?
                    .iter()
                    .map(BenchmarkInfo::from_json)
                    .collect::<Result<_, _>>()?,
                architectures: doc
                    .get("architectures")
                    .and_then(Json::as_arr)
                    .ok_or("missing field `architectures`")?
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "architectures entries must be strings".to_string())
                    })
                    .collect::<Result<_, _>>()?,
            }),
            "report" => Ok(Response::Report(ReportReply {
                benchmark: str_field(doc, "benchmark")?,
                batch: u64_field(doc, "batch")?,
                backend: BackendChoice::parse(&str_field(doc, "backend")?)?,
                quant: opt_str_field(doc, "quant")?,
                arch: ArchInfo::from_json(doc.get("arch").ok_or("missing field `arch`")?)?,
                cycles: u64_field(doc, "cycles")?,
                macs: u64_field(doc, "macs")?,
                dram_bits: u64_field(doc, "dram_bits")?,
                latency_ms_per_input: f64_field(doc, "latency_ms_per_input")?,
                macs_per_cycle: f64_field(doc, "macs_per_cycle")?,
                energy_per_input: EnergyInfo::from_json(
                    doc.get("energy_per_input")
                        .ok_or("missing field `energy_per_input`")?,
                )?,
                stalls: StallInfo::from_json(
                    doc.get("stalls").ok_or("missing field `stalls`")?,
                )?,
                layer_hits: layer_cache_field(doc, "hits")?,
                layer_misses: layer_cache_field(doc, "misses")?,
                layers: doc
                    .get("layers")
                    .and_then(Json::as_arr)
                    .ok_or("missing field `layers`")?
                    .iter()
                    .map(LayerInfo::from_json)
                    .collect::<Result<_, _>>()?,
            })),
            "compare" => Ok(Response::Compare(CompareReply {
                benchmark: str_field(doc, "benchmark")?,
                batch: u64_field(doc, "batch")?,
                backend: BackendChoice::parse(&str_field(doc, "backend")?)?,
                quant: opt_str_field(doc, "quant")?,
                latency_ms_per_input: f64_field(doc, "latency_ms_per_input")?,
                energy_per_input: EnergyInfo::from_json(
                    doc.get("energy_per_input")
                        .ok_or("missing field `energy_per_input`")?,
                )?,
                baselines: doc
                    .get("baselines")
                    .and_then(Json::as_arr)
                    .ok_or("missing field `baselines`")?
                    .iter()
                    .map(BaselineComparison::from_json)
                    .collect::<Result<_, _>>()?,
            })),
            "asm" => Ok(Response::Asm(AsmReply {
                benchmark: str_field(doc, "benchmark")?,
                batch: u64_field(doc, "batch")?,
                blocks: doc
                    .get("blocks")
                    .and_then(Json::as_arr)
                    .ok_or("missing field `blocks`")?
                    .iter()
                    .map(|b| {
                        Ok(AsmBlock {
                            layer: str_field(b, "layer")?,
                            text: str_field(b, "text")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            })),
            "sweep" => Ok(Response::Sweep(SweepReply {
                benchmark: str_field(doc, "benchmark")?,
                axis: SweepAxis::parse(&str_field(doc, "axis")?)?,
                backend: BackendChoice::parse(&str_field(doc, "backend")?)?,
                quant: opt_str_field(doc, "quant")?,
                baseline: u64_field(doc, "baseline")?,
                layer_hits: layer_cache_field(doc, "hits")?,
                layer_misses: layer_cache_field(doc, "misses")?,
                points: doc
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or("missing field `points`")?
                    .iter()
                    .map(SweepPointInfo::from_json)
                    .collect::<Result<_, _>>()?,
            })),
            "dse" => {
                let compile = doc.get("compile").ok_or("missing field `compile`")?;
                Ok(Response::Dse(DseReply {
                    backend: BackendChoice::parse(&str_field(doc, "backend")?)?,
                    quants: doc
                        .get("quants")
                        .and_then(Json::as_arr)
                        .ok_or("missing field `quants`")?
                        .iter()
                        .map(|q| {
                            q.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "quants entries must be strings".to_string())
                        })
                        .collect::<Result<_, _>>()?,
                    speedup_baseline: opt_str_field(doc, "speedup_baseline")?,
                    quant_speedups: match doc.get("quant_speedups") {
                        None => Vec::new(),
                        Some(v) => v
                            .as_arr()
                            .ok_or("quant_speedups must be an array")?
                            .iter()
                            .map(QuantSpeedupInfo::from_json)
                            .collect::<Result<_, _>>()?,
                    },
                    grid_points: u64_field(doc, "grid_points")?,
                    points: u64_field(doc, "points")?,
                    infeasible: u64_field(doc, "infeasible")?,
                    infeasible_sample: match doc.get("infeasible_sample") {
                        None => Vec::new(),
                        Some(v) => v
                            .as_arr()
                            .ok_or("infeasible_sample must be an array")?
                            .iter()
                            .map(InfeasibleInfo::from_json)
                            .collect::<Result<_, _>>()?,
                    },
                    compile_hits: u64_field(compile, "hits")?,
                    compile_misses: u64_field(compile, "misses")?,
                    layer_hits: layer_cache_field(doc, "hits")?,
                    layer_misses: layer_cache_field(doc, "misses")?,
                    frontier: doc
                        .get("frontier")
                        .and_then(Json::as_arr)
                        .ok_or("missing field `frontier`")?
                        .iter()
                        .map(FrontierPoint::from_json)
                        .collect::<Result<_, _>>()?,
                }))
            }
            "quantize" => Ok(Response::Quantize(QuantizeReply {
                benchmark: str_field(doc, "benchmark")?,
                quant: str_field(doc, "quant")?,
                total_macs: u64_field(doc, "total_macs")?,
                weight_bytes: u64_field(doc, "weight_bytes")?,
                share_le_4bit: f64_field(doc, "share_le_4bit")?,
                layers: doc
                    .get("layers")
                    .and_then(Json::as_arr)
                    .ok_or("missing field `layers`")?
                    .iter()
                    .map(QuantLayerInfo::from_json)
                    .collect::<Result<_, _>>()?,
            })),
            "stats" => {
                let connections = doc
                    .get("connections")
                    .ok_or("missing field `connections`")?;
                let requests = doc.get("requests").ok_or("missing field `requests`")?;
                let queue = doc.get("queue").ok_or("missing field `queue`")?;
                Ok(Response::Stats(StatsReply {
                    connections_active: u64_field(connections, "active")?,
                    connections_total: u64_field(connections, "total")?,
                    received: u64_field(requests, "received")?,
                    ok: u64_field(requests, "ok")?,
                    errors: u64_field(requests, "errors")?,
                    shed: u64_field(requests, "shed")?,
                    coalesced: u64_field(requests, "coalesced")?,
                    queue_depth: u64_field(queue, "depth")?,
                    queue_capacity: u64_field(queue, "capacity")?,
                    in_flight: u64_field(queue, "in_flight")?,
                    workers: u64_field(queue, "workers")?,
                    artifact_cache: CacheTierInfo::from_json(
                        doc.get("artifact_cache")
                            .ok_or("missing field `artifact_cache`")?,
                    )?,
                    layer_cache: CacheTierInfo::from_json(
                        doc.get("layer_cache").ok_or("missing field `layer_cache`")?,
                    )?,
                    latency: LatencyInfo::from_json(
                        doc.get("latency_us").ok_or("missing field `latency_us`")?,
                    )?,
                    disk: doc
                        .get("disk_store")
                        .map(DiskStoreInfo::from_json)
                        .transpose()?,
                }))
            }
            "shutdown" => Ok(Response::Shutdown),
            "error" => Ok(Response::Error {
                message: str_field(doc, "message")?,
            }),
            other => Err(format!("unknown reply `{other}`")),
        }
    }

    /// Parses a response from its wire text.
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors with a byte offset, and protocol errors
    /// naming the offending field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = parse_json(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Response::from_json(&doc)
    }
}

/// The `"layer_cache":{"hits":…,"misses":…}` object `report`, `sweep`,
/// and `dse` replies carry (spec-level counters, not cache state).
fn layer_cache_json(hits: u64, misses: u64) -> Json {
    Json::obj(vec![
        ("hits", Json::uint(hits)),
        ("misses", Json::uint(misses)),
    ])
}

fn layer_cache_field(doc: &Json, key: &str) -> Result<u64, String> {
    let obj = doc
        .get("layer_cache")
        .ok_or("missing field `layer_cache`")?;
    u64_field(obj, key)
}

fn uint_arr(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::uint(v)).collect())
}

fn opt_uint_arr(doc: &Json, key: &str) -> Result<Option<Vec<u64>>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_arr()
            .ok_or(format!("{key} must be an array"))?
            .iter()
            .map(|x| x.as_u64().ok_or(format!("{key} entries must be non-negative integers")))
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

fn str_field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("missing string field `{key}`"))
}

fn opt_str_field(doc: &Json, key: &str) -> Result<Option<String>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or(format!("field `{key}` must be a string")),
    }
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or(format!("missing integer field `{key}`"))
}

fn opt_u64_field(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or(format!("field `{key}` must be a non-negative integer")),
    }
}

fn f64_field(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or(format!("missing number field `{key}`"))
}

fn opt_backend(doc: &Json) -> Result<Option<BackendChoice>, String> {
    match opt_str_field(doc, "backend")? {
        None => Ok(None),
        Some(s) => BackendChoice::parse(&s).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_round_trip() {
        let external = bitfusion_dnn::schema::parse_model(
            r#"{"format":"bitfusion-model/1","name":"tiny","layers":[{"name":"fc1","kind":"fc","in_features":64,"out_features":32,"precision":"4/1"}]}"#,
        )
        .unwrap();
        let requests = vec![
            Request::List,
            Request::Report {
                model: ModelSource::zoo("LSTM"),
                batch: 16,
                bandwidth: Some(256),
                arch: ArchPreset::Isca45nm,
                backend: Some(BackendChoice::Event),
                quant: Some("uniform8".into()),
            },
            Request::Report {
                model: ModelSource::External(external.clone()),
                batch: 16,
                bandwidth: None,
                arch: ArchPreset::Isca45nm,
                backend: None,
                quant: None,
            },
            Request::Compare {
                model: ModelSource::zoo("AlexNet"),
                batch: 4,
                backend: None,
                quant: None,
            },
            Request::Asm {
                model: ModelSource::zoo("RNN"),
                batch: 1,
                arch: ArchPreset::StripesMatched,
                layer: Some("fc1".into()),
            },
            Request::Sweep {
                model: ModelSource::External(external.clone()),
                axis: SweepAxis::Bandwidth,
                backend: None,
                quant: Some("default=4/1,conv=2/2".into()),
            },
            Request::Dse(DseParams {
                quants: vec!["paper".into(), "uniform8".into(), "uniform16".into()],
                models: vec![external],
                ..DseParams::default()
            }),
            Request::Quantize {
                model: ModelSource::zoo("Cifar-10"),
                quant: Some("uniform16".into()),
            },
        ];
        for req in requests {
            let wire = req.encode();
            let back = Request::parse(&wire).unwrap();
            assert_eq!(back, req, "{wire}");
            assert_eq!(back.encode(), wire);
        }
    }

    #[test]
    fn terse_requests_fill_defaults() {
        let req = Request::parse(r#"{"cmd":"report","benchmark":"lstm"}"#).unwrap();
        assert_eq!(
            req,
            Request::Report {
                model: ModelSource::zoo("lstm"),
                batch: 16,
                bandwidth: None,
                arch: ArchPreset::Isca45nm,
                backend: None,
                quant: None,
            }
        );
        assert!(matches!(
            Request::parse(r#"{"cmd":"dse"}"#).unwrap(),
            Request::Dse(p) if p == DseParams::default()
        ));
        assert_eq!(
            Request::parse(r#"{"cmd":"quantize","benchmark":"svhn"}"#).unwrap(),
            Request::Quantize {
                model: ModelSource::zoo("svhn"),
                quant: None,
            }
        );
    }

    #[test]
    fn model_and_benchmark_are_mutually_exclusive() {
        let model = r#"{"format":"bitfusion-model/1","name":"net","layers":[{"name":"fc1","kind":"fc","in_features":8,"out_features":4,"precision":"8/8"}]}"#;
        let e = Request::parse(&format!(
            r#"{{"cmd":"report","benchmark":"lstm","model":{model}}}"#
        ))
        .unwrap_err();
        assert!(e.contains("not both"), "{e}");
        // An inline model alone parses to the external source.
        let req =
            Request::parse(&format!(r#"{{"cmd":"report","model":{model}}}"#)).unwrap();
        let Request::Report { model: ModelSource::External(m), .. } = req else {
            panic!("expected an external report");
        };
        assert_eq!(m.name, "net");
        // A malformed inline model reports the schema's located diagnostic.
        let e = Request::parse(
            r#"{"cmd":"report","model":{"format":"bitfusion-model/1","name":"net","layers":[{"name":"x","kind":"conv3d"}]}}"#,
        )
        .unwrap_err();
        assert!(e.contains("layers[0].kind"), "{e}");
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(Request::parse("not json").unwrap_err().contains("invalid JSON"));
        assert!(Request::parse(r#"{"cmd":"frobnicate"}"#)
            .unwrap_err()
            .contains("frobnicate"));
        assert!(Request::parse(r#"{"cmd":"report"}"#)
            .unwrap_err()
            .contains("benchmark"));
        assert!(Request::parse(r#"{"cmd":"report","benchmark":"lstm","backend":"x"}"#)
            .unwrap_err()
            .contains("backend"));
    }

    #[test]
    fn misspelled_fields_are_rejected_not_defaulted() {
        // A typo'd field must error (like an unknown CLI flag), never fall
        // back to the default value silently.
        let e = Request::parse(r#"{"cmd":"report","benchmark":"rnn","bacth":8}"#).unwrap_err();
        assert!(e.contains("bacth") && e.contains("report"), "{e}");
        let e = Request::parse(r#"{"cmd":"sweep","benchmark":"rnn","axis":"batch","workers":2}"#)
            .unwrap_err();
        assert!(e.contains("workers") && e.contains("sweep"), "{e}");
        assert!(Request::parse(r#"{"cmd":"list","extra":1}"#).is_err());
    }

    #[test]
    fn quant_spec_json_forms() {
        let preset = QuantSpec::parse("uniform8").unwrap();
        let j = quant_spec_to_json(&preset);
        assert_eq!(j.encode(), r#"{"preset":"uniform8"}"#);
        assert_eq!(quant_spec_from_json(&j).unwrap(), preset);

        let custom = QuantSpec::parse("default=4/1,conv=2/2,layer:fc8=8/8").unwrap();
        let j = quant_spec_to_json(&custom);
        assert_eq!(quant_spec_from_json(&j).unwrap(), custom);
        assert!(j.encode().contains(r#""default":"4/1""#), "{}", j.encode());

        for bad in [
            r#"{"kinds":[{"kind":"pool","precision":"4/4"}]}"#,
            r#"{"default":"3/3"}"#,
            r#"{"preset":"uniform9"}"#,
            r#"{"preset":"paper","default":"4/4"}"#,
            r#"{}"#,
        ] {
            assert!(
                quant_spec_from_json(&parse_json(bad).unwrap()).is_err(),
                "{bad} accepted"
            );
        }
    }

    #[test]
    fn error_response_round_trip() {
        let resp = Response::Error {
            message: "unknown benchmark `nope`".into(),
        };
        let wire = resp.encode();
        assert_eq!(Response::parse(&wire).unwrap(), resp);
        assert!(wire.starts_with(r#"{"reply":"error""#));
    }

    #[test]
    fn stats_and_shutdown_requests_round_trip() {
        assert_eq!(Request::Stats.encode(), r#"{"cmd":"stats"}"#);
        assert_eq!(Request::parse(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(Request::Shutdown.encode(), r#"{"cmd":"shutdown"}"#);
        assert_eq!(
            Request::parse(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        // Both take no fields.
        assert!(Request::parse(r#"{"cmd":"stats","extra":1}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"shutdown","force":true}"#).is_err());
    }

    #[test]
    fn stats_response_round_trip() {
        let resp = Response::Stats(StatsReply {
            connections_active: 2,
            connections_total: 17,
            received: 120,
            ok: 110,
            errors: 10,
            shed: 4,
            coalesced: 6,
            queue_depth: 1,
            queue_capacity: 64,
            in_flight: 3,
            workers: 4,
            artifact_cache: CacheTierInfo {
                hits: 80,
                misses: 20,
                evictions: 5,
                len: 15,
                capacity: 32,
            },
            layer_cache: CacheTierInfo {
                hits: 400,
                misses: 100,
                evictions: 0,
                len: 100,
                capacity: 4096,
            },
            latency: LatencyInfo {
                count: 110,
                p50_us: 512,
                p90_us: 2048,
                p99_us: 8192,
                max_us: 7311,
            },
            disk: None,
        });
        let wire = resp.encode();
        assert_eq!(Response::parse(&wire).unwrap(), resp);
        assert!(wire.starts_with(r#"{"reply":"stats","connections":"#), "{wire}");
        // Without --cache-dir the reply carries no disk tier at all.
        assert!(!wire.contains("disk_store"), "{wire}");
        // No timestamps on the wire: a quiesced server answers
        // reproducibly.
        assert!(!wire.contains("time"), "{wire}");
    }

    #[test]
    fn stats_response_round_trips_the_disk_tier() {
        let resp = Response::Stats(StatsReply {
            disk: Some(DiskStoreInfo {
                plan_hits: 8,
                plan_misses: 1,
                layer_hits: 61,
                layer_misses: 3,
                point_hits: 48,
                point_misses: 2,
                writes: 6,
                corrupt: 1,
            }),
            ..StatsReply::default()
        });
        let wire = resp.encode();
        assert_eq!(Response::parse(&wire).unwrap(), resp);
        assert!(wire.contains(r#""disk_store":{"plan_hits":8"#), "{wire}");
    }

    #[test]
    fn shutdown_response_round_trip() {
        assert_eq!(Response::Shutdown.encode(), r#"{"reply":"shutdown"}"#);
        assert_eq!(
            Response::parse(r#"{"reply":"shutdown"}"#).unwrap(),
            Response::Shutdown
        );
    }
}
