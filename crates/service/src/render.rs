//! Human-readable rendering of protocol responses.
//!
//! The CLI prints exactly one of two things for every subcommand: the
//! response's single-line JSON ([`crate::protocol::Response::encode`],
//! behind `--json`) or the text produced here. Both derive from the same
//! [`Response`] value, so the human and machine views can never disagree
//! about the numbers — and anything the text shows is, by construction,
//! available to protocol clients.

use crate::protocol::{BackendChoice, EnergyInfo, Response, SweepAxis};

/// Formats an energy breakdown the way the simulator's own display does:
/// total µJ plus the Figure 14 category percentages.
fn energy_text(e: &EnergyInfo) -> String {
    let total = e.total_pj();
    let pct = |part: f64| if total == 0.0 { 0.0 } else { part / total * 100.0 };
    format!(
        "{:.2} uJ (compute {:.0}%, buffers {:.0}%, RF {:.0}%, DRAM {:.0}%)",
        total / 1e6,
        pct(e.compute_pj),
        pct(e.buffer_pj),
        pct(e.rf_pj),
        pct(e.dram_pj)
    )
}

/// Renders a response as the CLI's human-readable output (no trailing
/// newline; the caller `println!`s it).
pub fn render(response: &Response) -> String {
    match response {
        Response::Benchmarks {
            benchmarks,
            architectures,
        } => {
            let mut out = String::from("benchmarks (Table II):\n");
            for b in benchmarks {
                out.push_str(&format!(
                    "  {:<10} {:>7.0} MOps  {:>6.2} MB  {} layers\n",
                    b.name,
                    b.macs as f64 / 1e6,
                    b.weight_bytes as f64 / 1e6,
                    b.layers
                ));
            }
            out.push_str("\narchitectures:\n");
            for a in architectures {
                out.push_str(&format!("  {a}\n"));
            }
            out.trim_end().to_string()
        }
        Response::Report(r) => {
            let quant = r
                .quant
                .as_ref()
                .map(|q| format!(", quant {q}"))
                .unwrap_or_default();
            let mut out = format!(
                "{} (batch {}{}): {:.3} ms/input, {} cycles, {:.1} MACs/cycle, {}\n",
                r.benchmark,
                r.batch,
                quant,
                r.latency_ms_per_input,
                r.cycles,
                r.macs_per_cycle,
                energy_text(&r.energy_per_input)
            );
            for l in &r.layers {
                let mpc = if l.cycles == 0 {
                    0.0
                } else {
                    l.macs as f64 / l.cycles as f64
                };
                out.push_str(&format!(
                    "  {:<12} {:>12} cyc ({}) {:>8.1} MACs/cyc\n",
                    l.name,
                    l.cycles,
                    if l.bandwidth_bound { "mem " } else { "comp" },
                    mpc
                ));
            }
            out.push_str(&format!(
                "dram traffic: {:.2} Mb/input; energy/input: {}",
                r.dram_bits as f64 / r.batch as f64 / 1e6,
                energy_text(&r.energy_per_input)
            ));
            if r.backend == BackendChoice::Event {
                out.push_str(&format!(
                    "\nstalls: {} cycles bandwidth-starved, {} compute-starved, {} fill/drain",
                    r.stalls.bandwidth_starved, r.stalls.compute_starved, r.stalls.fill_drain
                ));
            }
            out
        }
        Response::Compare(r) => {
            let quant = r
                .quant
                .as_ref()
                .map(|q| format!(", quant {q}"))
                .unwrap_or_default();
            let mut out = format!(
                "{} (batch {}{}): BitFusion-45nm {:.3} ms/input, {}",
                r.benchmark,
                r.batch,
                quant,
                r.latency_ms_per_input,
                energy_text(&r.energy_per_input)
            );
            for b in &r.baselines {
                let label = match b.name.as_str() {
                    "eyeriss" => "vs Eyeriss".to_string(),
                    "stripes" => "vs Stripes".to_string(),
                    "tegra-x2" => "vs Tegra X2 (16 nm config)".to_string(),
                    other => format!("vs {other}"),
                };
                match b.energy_ratio {
                    Some(ratio) => out.push_str(&format!(
                        "\n  {label}: {:.2}x faster, {:.2}x less energy",
                        b.speedup, ratio
                    )),
                    None => out.push_str(&format!("\n  {label}: {:.1}x faster", b.speedup)),
                }
            }
            out
        }
        Response::Asm(r) => {
            let blocks: Vec<&str> = r.blocks.iter().map(|b| b.text.as_str()).collect();
            blocks.join("\n")
        }
        Response::Sweep(r) => {
            let mut out = match &r.quant {
                Some(q) => format!("quant {q}\n"),
                None => String::new(),
            };
            out += &match r.axis {
                SweepAxis::Bandwidth => format!(
                    "{} bandwidth sweep (batch 16, {} backend, vs {} b/cyc):",
                    r.benchmark,
                    r.backend.as_str(),
                    r.baseline
                ),
                SweepAxis::Batch => format!(
                    "{} batch sweep (per-input speedup vs batch {}, {} backend):",
                    r.benchmark,
                    r.baseline,
                    r.backend.as_str()
                ),
            };
            for p in &r.points {
                match r.axis {
                    SweepAxis::Bandwidth => out.push_str(&format!(
                        "\n  {:>4} bits/cycle: {:5.2}x",
                        p.value, p.speedup
                    )),
                    SweepAxis::Batch => {
                        out.push_str(&format!("\n  batch {:>3}: {:5.2}x", p.value, p.speedup))
                    }
                }
            }
            out
        }
        Response::Dse(r) => {
            let mut out = format!(
                "design space: {} architectures, {} evaluated points ({} infeasible), {} backend\n",
                r.grid_points,
                r.points,
                r.infeasible,
                r.backend.as_str()
            );
            out.push_str(&format!(
                "compile sharing: {} unique compilations, {} points served from cache\n",
                r.compile_misses, r.compile_hits
            ));
            out.push_str(&format!(
                "layer sharing: {} unique layer evaluations, {} served from the layer cache\n",
                r.layer_misses, r.layer_hits
            ));
            if r.quants.len() > 1 {
                out.push_str(&format!("quantizations: {}\n", r.quants.join(", ")));
            }
            out.push_str(&format!(
                "\nPareto frontier over (cycles, energy, area), {} of {} candidates:\n",
                r.frontier.len(),
                r.grid_points as usize * r.quants.len().max(1)
            ));
            out.push_str(&format!(
                "  {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} {:>10} | {:>14} {:>11} {:>9} {:>8}\n",
                "rows", "cols", "ibuf", "wbuf", "obuf", "bw", "quant", "cycles", "energy(mJ)", "area(mm2)", "bw-stall"
            ));
            for s in &r.frontier {
                let total_stall = s.bandwidth_starved + s.compute_starved;
                let bw_frac = if total_stall == 0 {
                    0.0
                } else {
                    s.bandwidth_starved as f64 / total_stall as f64
                };
                out.push_str(&format!(
                    "  {:>4} {:>4} {:>4}K {:>4}K {:>4}K {:>5} {:>10} | {:>14} {:>11.2} {:>9.2} {:>7.0}%\n",
                    s.arch.rows,
                    s.arch.cols,
                    s.arch.ibuf_kb,
                    s.arch.wbuf_kb,
                    s.arch.obuf_kb,
                    s.arch.bandwidth_bits_per_cycle,
                    s.quant,
                    s.cycles,
                    s.energy_pj / 1e9,
                    s.area_mm2,
                    bw_frac * 100.0
                ));
            }
            if let Some(baseline) = &r.speedup_baseline {
                out.push_str(&format!(
                    "\nquantization speedups vs {baseline} (whole grid):\n"
                ));
                for s in &r.quant_speedups {
                    out.push_str(&format!(
                        "  {:<10} {:<24} {:5.2}x faster, {:5.2}x less energy\n",
                        s.model, s.quant, s.speedup, s.energy_ratio
                    ));
                }
            }
            if !r.infeasible_sample.is_empty() {
                out.push_str(&format!(
                    "\ninfeasible corners (first {} of {}):\n",
                    r.infeasible_sample.len(),
                    r.infeasible
                ));
                for p in &r.infeasible_sample {
                    out.push_str(&format!("  {} @ {}: {}\n", p.model, p.arch, p.error));
                }
            }
            out.trim_end().to_string()
        }
        Response::Quantize(r) => {
            let mut out = format!(
                "{} under {}: {:.0}M MACs, {:.2} MB weights, {:.1}% of MACs at <=4 bits\n",
                r.benchmark,
                r.quant,
                r.total_macs as f64 / 1e6,
                r.weight_bytes as f64 / 1e6,
                r.share_le_4bit * 100.0
            );
            out.push_str(&format!(
                "  {:<12} {:<6} {:>6} {:>7} {:>10}\n",
                "layer", "kind", "input", "weight", "MACs(M)"
            ));
            for l in &r.layers {
                out.push_str(&format!(
                    "  {:<12} {:<6} {:>5}b {:>6}b {:>10.1}\n",
                    l.name,
                    l.kind,
                    l.input_bits,
                    l.weight_bits,
                    l.macs as f64 / 1e6
                ));
            }
            out.trim_end().to_string()
        }
        Response::Stats(r) => {
            let mut out = format!(
                "connections: {} active, {} total\n",
                r.connections_active, r.connections_total
            );
            out.push_str(&format!(
                "requests: {} received, {} ok, {} errors ({} shed), {} coalesced\n",
                r.received, r.ok, r.errors, r.shed, r.coalesced
            ));
            out.push_str(&format!(
                "queue: {}/{} waiting, {}/{} in flight\n",
                r.queue_depth, r.queue_capacity, r.in_flight, r.workers
            ));
            for (name, tier) in [
                ("artifact cache", &r.artifact_cache),
                ("layer cache", &r.layer_cache),
            ] {
                let rate = match tier.hits.saturating_add(tier.misses) {
                    0 => "n/a".to_string(),
                    total => format!("{:.1}%", tier.hits as f64 / total as f64 * 100.0),
                };
                out.push_str(&format!(
                    "{name}: {} hits, {} misses ({rate}), {} evictions, {}/{} entries\n",
                    tier.hits, tier.misses, tier.evictions, tier.len, tier.capacity
                ));
            }
            out.push_str(&format!(
                "latency: {} timed, p50 {}us, p90 {}us, p99 {}us, max {}us",
                r.latency.count,
                r.latency.p50_us,
                r.latency.p90_us,
                r.latency.p99_us,
                r.latency.max_us
            ));
            out
        }
        Response::Shutdown => "shutdown: server draining".to_string(),
        Response::Error { message } => format!("error: {message}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use crate::session::Session;

    #[test]
    fn every_response_kind_renders_nonempty() {
        let session = Session::new();
        let requests = [
            r#"{"cmd":"list"}"#,
            r#"{"cmd":"report","benchmark":"rnn","batch":4,"backend":"event"}"#,
            r#"{"cmd":"compare","benchmark":"rnn","batch":4}"#,
            r#"{"cmd":"asm","benchmark":"rnn","batch":1}"#,
            r#"{"cmd":"sweep","benchmark":"rnn","axis":"batch"}"#,
            r#"{"cmd":"dse","rows":[16],"cols":[16],"bandwidth":[128],"networks":["rnn"],"workers":1}"#,
        ];
        for text in requests {
            let resp = session.handle(&Request::parse(text).unwrap());
            assert!(
                !matches!(resp, Response::Error { .. }),
                "{text}: {resp:?}"
            );
            assert!(!render(&resp).is_empty(), "{text}");
        }
    }

    #[test]
    fn report_text_shows_stalls_only_for_event_backend() {
        let session = Session::new();
        let analytic = session.handle(
            &Request::parse(r#"{"cmd":"report","benchmark":"rnn","batch":1}"#).unwrap(),
        );
        let event = session.handle(
            &Request::parse(r#"{"cmd":"report","benchmark":"rnn","batch":1,"backend":"event"}"#)
                .unwrap(),
        );
        assert!(!render(&analytic).contains("stalls:"));
        assert!(render(&event).contains("stalls:"));
    }

    #[test]
    fn error_renders_with_prefix() {
        assert_eq!(
            render(&Response::Error {
                message: "boom".into()
            }),
            "error: boom"
        );
    }
}
