//! The [`Session`] facade: one stable object through which every
//! evaluation flows.
//!
//! A session owns the three things that parameterize evaluation —
//! calibration knobs ([`SimOptions`]), the default backend choice, and the
//! shared compiled-artifact cache ([`ArtifactCache`]) — and turns typed
//! [`Request`]s into typed [`Response`]s. Every entry point (the one-shot
//! CLI, the `serve` loop, tests, benches) goes through [`Session::handle`],
//! so `report`, `compare`, `sweep`, and `dse` all reuse compilations, and
//! the same request always produces the same response bytes.
//!
//! # Determinism contract
//!
//! For a fixed session configuration, `handle` is a pure function of the
//! request: responses never depend on cache warmth (the cache changes
//! *wall-clock time*, never *bytes* — `dse` responses report spec-level
//! compile sharing, not cache-state-dependent counters), on worker counts
//! (the underlying engines reassemble results in deterministic order), or
//! on request interleaving in `serve`. This is what makes the JSON-lines
//! server's output byte-identical to the corresponding one-shot
//! invocations.

use std::sync::Arc;

use bitfusion_baselines::{EyerissSim, GpuMode, GpuModel, StripesSim};
use bitfusion_compiler::{ArtifactCache, CacheStats, DiskArtifactStore, StoreStats};
use bitfusion_core::arch::ArchConfig;
use bitfusion_core::grid::ArchGrid;
use bitfusion_dnn::model::Model;
use bitfusion_dnn::quantspec::QuantSpec;
use bitfusion_dnn::stats::BitwidthStats;
use bitfusion_dnn::zoo::Benchmark;
use bitfusion_energy::{ChipArea, EnergyBreakdown, FusionEnergy};
use bitfusion_isa::asm::format_block;
use bitfusion_sim::{
    bandwidth_sweep_tiered, batch_sweep_tiered, explore_checkpointed,
    layer_cache::run_plan_cached, plan_layer_sharing, AnalyticBackend, DseResult, DseSpec,
    EventBackend, LayerPerfCache, PerfReport, SimOptions, Sweep,
};

use crate::protocol::{
    ArchInfo, ArchPreset, AsmBlock, AsmReply, BackendChoice, BaselineComparison, BenchmarkInfo,
    CompareReply, DseParams, DseReply, EnergyInfo, FrontierPoint, InfeasibleInfo, LayerInfo,
    ModelSource, QuantLayerInfo, QuantSpeedupInfo, QuantizeReply, ReportReply, Request, Response,
    StallInfo, SweepAxis, SweepPointInfo, SweepReply,
};

/// Batch sizes the `sweep --batch` axis walks (Figure 16).
pub const SWEEP_BATCHES: [u64; 5] = [1, 4, 16, 64, 256];
/// The batch the batch axis normalizes against.
pub const SWEEP_BATCH_BASELINE: u64 = 1;
/// Bandwidths the `sweep --bandwidth` axis walks (Figure 15), bits/cycle.
pub const SWEEP_BANDWIDTHS: [u32; 5] = [32, 64, 128, 256, 512];
/// The bandwidth the bandwidth axis normalizes against.
pub const SWEEP_BANDWIDTH_BASELINE: u32 = 128;
/// The batch size the bandwidth axis runs at.
pub const SWEEP_BANDWIDTH_BATCH: u64 = 16;

/// A configured evaluation session: calibration + backend + shared
/// artifact cache.
///
/// # Examples
///
/// ```
/// use bitfusion_service::protocol::{Request, Response};
/// use bitfusion_service::session::Session;
///
/// let session = Session::new();
/// let req = Request::parse(r#"{"cmd":"report","benchmark":"rnn","batch":4}"#).unwrap();
/// match session.handle(&req) {
///     Response::Report(r) => assert!(r.cycles > 0),
///     other => panic!("{other:?}"),
/// }
/// // The same request again is answered from the artifact cache.
/// assert!(session.cache_stats().hits > 0 || session.cache_stats().misses > 0);
/// ```
#[derive(Debug)]
pub struct Session {
    options: SimOptions,
    backend: BackendChoice,
    cache: ArtifactCache,
    layer_cache: LayerPerfCache,
    store: Option<Arc<DiskArtifactStore>>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A session with default calibration, the analytic backend, and a
    /// default-capacity cache.
    pub fn new() -> Self {
        Session {
            options: SimOptions::default(),
            backend: BackendChoice::Analytic,
            cache: ArtifactCache::default(),
            layer_cache: LayerPerfCache::default(),
            store: None,
        }
    }

    /// Overrides the calibration knobs.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the default backend (requests may still override
    /// per-request).
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the artifact cache with one of the given capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ArtifactCache::new(capacity);
        self
    }

    /// Replaces the layer-tier cache with one of the given capacity.
    pub fn with_layer_cache_capacity(mut self, capacity: usize) -> Self {
        self.layer_cache = LayerPerfCache::new(capacity);
        self
    }

    /// Attaches a persistent disk tier at `dir` beneath both in-memory
    /// caches (the `--cache-dir` path): plans and layer evaluations are
    /// read through / written behind, so a restarted session warms from
    /// disk, and `dse` requests with `resume` checkpoint completed points
    /// there. Call this *after* the capacity builders — they replace the
    /// cache objects the store is attached to.
    ///
    /// # Errors
    ///
    /// A held lock (another process using the directory — the message
    /// names the lock file) or an IO failure, as a displayable string.
    pub fn with_cache_dir(mut self, dir: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let store = Arc::new(DiskArtifactStore::open(dir).map_err(|e| e.to_string())?);
        self.cache.attach_store(store.clone());
        self.layer_cache.attach_store(store.clone());
        self.store = Some(store);
        Ok(self)
    }

    /// The session's calibration knobs.
    pub fn options(&self) -> SimOptions {
        self.options
    }

    /// The session's default backend.
    pub fn backend(&self) -> BackendChoice {
        self.backend
    }

    /// Counters of the shared artifact cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Counters of the shared layer-tier cache.
    pub fn layer_cache_stats(&self) -> CacheStats {
        self.layer_cache.stats()
    }

    /// Counters of the attached disk tier, or `None` when the session has
    /// no `--cache-dir`.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Serves one request. Never panics on bad input: failures come back
    /// as [`Response::Error`].
    pub fn handle(&self, request: &Request) -> Response {
        let result = match request {
            Request::List => Ok(self.list()),
            Request::Report {
                model,
                batch,
                bandwidth,
                arch,
                backend,
                quant,
            } => self.report(model, *batch, *bandwidth, *arch, *backend, quant.as_deref()),
            Request::Compare {
                model,
                batch,
                backend,
                quant,
            } => self.compare(model, *batch, *backend, quant.as_deref()),
            Request::Asm {
                model,
                batch,
                arch,
                layer,
            } => self.asm(model, *batch, *arch, layer.as_deref()),
            Request::Sweep {
                model,
                axis,
                backend,
                quant,
            } => self.sweep(model, *axis, *backend, quant.as_deref()),
            Request::Dse(params) => self.dse(params),
            Request::Quantize { model, quant } => self.quantize(model, quant.as_deref()),
            // Server-level requests: a bare session has no admission
            // queue, connection counters, or latency histogram to report,
            // and nothing to shut down. The network server intercepts
            // these before they reach `handle`.
            Request::Stats => Err(
                "`stats` is answered by the network server (serve --listen/--unix)".to_string(),
            ),
            Request::Shutdown => Err(
                "`shutdown` is answered by the network server (serve --unix)".to_string(),
            ),
        };
        result.unwrap_or_else(|message| Response::Error { message })
    }

    fn list(&self) -> Response {
        Response::Benchmarks {
            benchmarks: Benchmark::ALL
                .into_iter()
                .map(|b| {
                    let m = b.model();
                    BenchmarkInfo {
                        name: b.name().to_string(),
                        layers: m.len() as u64,
                        macs: m.total_macs(),
                        weight_bytes: m.weight_bytes(),
                    }
                })
                .collect(),
            architectures: [
                ArchConfig::isca_45nm(),
                ArchConfig::stripes_matched(),
                ArchConfig::gpu_16nm(),
            ]
            .iter()
            .map(ArchConfig::to_string)
            .collect(),
        }
    }

    fn report(
        &self,
        source: &ModelSource,
        batch: u64,
        bandwidth: Option<u32>,
        arch: ArchPreset,
        backend: Option<BackendChoice>,
        quant: Option<&str>,
    ) -> Result<Response, String> {
        let resolved = resolve_model(source, quant)?;
        let backend = backend.unwrap_or(self.backend);
        let (model, quant) = (resolved.model, resolved.quant);
        let mut arch = arch_config(arch);
        if let Some(bw) = bandwidth {
            arch = arch.with_bandwidth(bw);
        }
        arch.validate().map_err(|e| e.to_string())?;
        // Spec-level layer sharing within this plan (warmth-independent —
        // the reply must not change as the session's caches fill).
        let cached = self.compiled(&model, &arch, batch)?;
        let (layer_hits, layer_misses) =
            plan_layer_sharing(cached.as_ref().as_ref().expect("checked by compiled()"));
        let report = self.simulate(&model, &arch, batch, backend)?;
        let stalls = report.total_stalls();
        Ok(Response::Report(ReportReply {
            benchmark: resolved.name,
            batch,
            backend,
            quant,
            arch: arch_info(&arch),
            cycles: report.total_cycles(),
            macs: report.total_macs(),
            dram_bits: report.total_dram_bits(),
            latency_ms_per_input: report.latency_ms_per_input(),
            macs_per_cycle: report.macs_per_cycle(),
            energy_per_input: energy_info(report.energy_per_input()),
            stalls: StallInfo {
                bandwidth_starved: stalls.bandwidth_starved,
                compute_starved: stalls.compute_starved,
                fill_drain: stalls.fill_drain,
            },
            layer_hits,
            layer_misses,
            layers: report
                .layers
                .iter()
                .map(|l| LayerInfo {
                    name: l.name.clone(),
                    cycles: l.cycles,
                    compute_cycles: l.compute_cycles,
                    dma_cycles: l.dma_cycles,
                    macs: l.macs,
                    dram_bits: l.dram_bits,
                    bandwidth_bound: l.is_bandwidth_bound(),
                })
                .collect(),
        }))
    }

    fn compare(
        &self,
        source: &ModelSource,
        batch: u64,
        backend: Option<BackendChoice>,
        quant: Option<&str>,
    ) -> Result<Response, String> {
        let resolved = resolve_model(source, quant)?;
        let backend = backend.unwrap_or(self.backend);
        // The quantization applies to the precision-sensitive executors
        // (Bit Fusion, the bit-serial Stripes); Eyeriss and the GPU run
        // the 16-bit reference model regardless.
        let (model, quant) = (resolved.model, resolved.quant);
        let r = self.simulate(&model, &ArchConfig::isca_45nm(), batch, backend)?;
        let ey = EyerissSim::default().run(&resolved.reference, batch);
        let rs = self.simulate(&model, &ArchConfig::stripes_matched(), batch, backend)?;
        let st = StripesSim::default().run(&model, batch);
        let r16 = self.simulate(&model, &ArchConfig::gpu_16nm(), batch, backend)?;
        let tx2 = GpuModel::tegra_x2().run(&resolved.reference, batch, GpuMode::Fp32);
        Ok(Response::Compare(CompareReply {
            benchmark: resolved.name,
            batch,
            backend,
            quant,
            latency_ms_per_input: r.latency_ms_per_input(),
            energy_per_input: energy_info(r.energy_per_input()),
            baselines: vec![
                BaselineComparison {
                    name: "eyeriss".to_string(),
                    speedup: ey.latency_ms_per_input() / r.latency_ms_per_input(),
                    energy_ratio: Some(ey.energy.total_pj() / r.total_energy().total_pj()),
                },
                BaselineComparison {
                    name: "stripes".to_string(),
                    speedup: st.latency_ms_per_input() / rs.latency_ms_per_input(),
                    energy_ratio: Some(st.energy.total_pj() / rs.total_energy().total_pj()),
                },
                BaselineComparison {
                    name: "tegra-x2".to_string(),
                    speedup: tx2.latency_ms_per_input() / r16.latency_ms_per_input(),
                    energy_ratio: None,
                },
            ],
        }))
    }

    fn asm(
        &self,
        source: &ModelSource,
        batch: u64,
        arch: ArchPreset,
        layer: Option<&str>,
    ) -> Result<Response, String> {
        let resolved = resolve_model(source, None)?;
        let cached = self.compiled(&resolved.model, &arch_config(arch), batch)?;
        let plan = cached.as_ref().as_ref().expect("checked by compiled()");
        let blocks: Vec<AsmBlock> = plan
            .layers
            .iter()
            .filter(|l| layer.is_none_or(|want| l.name == want))
            .map(|l| AsmBlock {
                layer: l.name.clone(),
                text: format_block(&l.block),
            })
            .collect();
        if blocks.is_empty() {
            if let Some(want) = layer {
                let names: Vec<&str> = plan.layers.iter().map(|l| l.name.as_str()).collect();
                return Err(format!(
                    "unknown layer `{want}` in {} (layers: {})",
                    resolved.name,
                    names.join(", ")
                ));
            }
        }
        Ok(Response::Asm(AsmReply {
            benchmark: resolved.name,
            batch,
            blocks,
        }))
    }

    fn sweep(
        &self,
        source: &ModelSource,
        axis: SweepAxis,
        backend: Option<BackendChoice>,
        quant: Option<&str>,
    ) -> Result<Response, String> {
        let resolved = resolve_model(source, quant)?;
        let backend = backend.unwrap_or(self.backend);
        let arch = ArchConfig::isca_45nm();
        let (model, quant) = (resolved.model, resolved.quant);
        let (baseline, points, layer_hits, layer_misses) = match axis {
            SweepAxis::Bandwidth => {
                let sweep = self
                    .dispatch_bandwidth_sweep(backend, &arch, &model)
                    .map_err(|e| e.to_string())?;
                let speedups = sweep
                    .speedups_vs(SWEEP_BANDWIDTH_BASELINE)
                    .ok_or("baseline bandwidth missing from the sweep")?;
                let points = sweep
                    .points
                    .iter()
                    .zip(&speedups)
                    .map(|(p, (_, s))| SweepPointInfo {
                        value: p.value as u64,
                        cycles: p.report.total_cycles(),
                        cycles_per_input: p.report.cycles_per_input(),
                        speedup: *s,
                    })
                    .collect();
                (
                    SWEEP_BANDWIDTH_BASELINE as u64,
                    points,
                    sweep.spec_layer_hits(),
                    sweep.layer_unique,
                )
            }
            SweepAxis::Batch => {
                let sweep = self
                    .dispatch_batch_sweep(backend, &arch, &model)
                    .map_err(|e| e.to_string())?;
                let speedups = sweep
                    .per_input_speedups_vs(SWEEP_BATCH_BASELINE)
                    .ok_or("baseline batch missing from the sweep")?;
                let points = sweep
                    .points
                    .iter()
                    .zip(&speedups)
                    .map(|(p, (_, s))| SweepPointInfo {
                        value: p.value,
                        cycles: p.report.total_cycles(),
                        cycles_per_input: p.report.cycles_per_input(),
                        speedup: *s,
                    })
                    .collect();
                (
                    SWEEP_BATCH_BASELINE,
                    points,
                    sweep.spec_layer_hits(),
                    sweep.layer_unique,
                )
            }
        };
        Ok(Response::Sweep(SweepReply {
            benchmark: resolved.name,
            axis,
            backend,
            quant,
            baseline,
            layer_hits,
            layer_misses,
            points,
        }))
    }

    fn quantize(&self, source: &ModelSource, quant: Option<&str>) -> Result<Response, String> {
        let spec = resolve_quant(quant)?;
        let resolved = resolve_model(source, quant)?;
        let model = resolved.model;
        let stats = BitwidthStats::of(&model);
        Ok(Response::Quantize(QuantizeReply {
            benchmark: resolved.name,
            quant: spec.to_string(),
            total_macs: model.total_macs(),
            weight_bytes: model.weight_bytes(),
            share_le_4bit: stats.share_at_or_below(4),
            layers: model
                .mac_layers()
                .map(|l| {
                    let p = l.layer.precision().expect("mac layers carry precisions");
                    QuantLayerInfo {
                        name: l.name.clone(),
                        kind: l.layer.kind().to_string(),
                        input_bits: p.input.bits() as u64,
                        weight_bits: p.weight.bits() as u64,
                        macs: l.layer.macs(),
                    }
                })
                .collect(),
        }))
    }

    fn dse(&self, params: &DseParams) -> Result<Response, String> {
        let backend = params.backend.unwrap_or(self.backend);
        // `networks: None` means the whole zoo — unless the request brings
        // its own external models, in which case an unnamed zoo would be a
        // surprising 8-network tax on a `--model` exploration.
        let networks: Vec<Benchmark> = match &params.networks {
            None if !params.models.is_empty() => Vec::new(),
            None => Benchmark::ALL.to_vec(),
            Some(names) => names
                .iter()
                .map(|n| find_benchmark(n))
                .collect::<Result<_, _>>()?,
        };
        let to_usize = |values: &[u64], what: &str| -> Result<Vec<usize>, String> {
            if values.is_empty() {
                return Err(format!("{what} has no candidates"));
            }
            values
                .iter()
                .map(|&v| usize::try_from(v).map_err(|_| format!("{what} value out of range")))
                .collect()
        };
        let kb_to_bytes = |values: &[u64], what: &str| -> Result<Vec<usize>, String> {
            to_usize(values, what)?
                .into_iter()
                .map(|kb| {
                    kb.checked_mul(1024)
                        .ok_or_else(|| format!("{what} value out of range"))
                })
                .collect()
        };
        let grid = ArchGrid {
            rows: to_usize(&params.rows, "rows")?,
            cols: to_usize(&params.cols, "cols")?,
            ibuf_bytes: kb_to_bytes(&params.ibuf_kb, "ibuf_kb")?,
            wbuf_bytes: kb_to_bytes(&params.wbuf_kb, "wbuf_kb")?,
            obuf_bytes: kb_to_bytes(&params.obuf_kb, "obuf_kb")?,
            dram_bits_per_cycle: params
                .bandwidth
                .iter()
                .map(|&bw| u32::try_from(bw).map_err(|_| "bandwidth value out of range"))
                .collect::<Result<_, _>>()?,
            ..ArchGrid::from_base(ArchConfig::isca_45nm())
        };
        let grid_points = grid.len();
        if params.quants.is_empty() {
            return Err("quants has no candidates".to_string());
        }
        let quant_specs: Vec<QuantSpec> = params
            .quants
            .iter()
            .map(|q| QuantSpec::parse(q))
            .collect::<Result<_, _>>()?;
        let quant_names: Vec<String> = quant_specs.iter().map(QuantSpec::to_string).collect();
        // Candidate identity is the canonical spelling: two entries that
        // canonicalize alike (e.g. `uniform8` and `default=8/8`) would
        // merge into one over-counted summary and silently empty the
        // frontier, so reject them up front.
        for (i, name) in quant_names.iter().enumerate() {
            if quant_names[..i].contains(name) {
                return Err(format!(
                    "duplicate quantization `{}` (canonicalizes to `{name}`)",
                    params.quants[i]
                ));
            }
        }
        let spec = DseSpec {
            grid,
            models: networks
                .iter()
                .map(|b| b.model())
                .chain(params.models.iter().cloned())
                .collect(),
            quant_specs,
            batches: params.batches.clone(),
            options: self.options,
        };
        if spec.is_empty() {
            return Err("empty design space (a dimension has no candidates)".to_string());
        }
        let workers = usize::try_from(params.workers).unwrap_or(0);
        // Checkpointing is opt-in per request: `resume` both writes point
        // checkpoints and restores any already on disk, so the same flag
        // starts a resumable sweep and resumes an interrupted one.
        let checkpoint = if params.resume {
            Some(self.store.as_deref().ok_or(
                "dse resume requires a persistent cache directory (start with --cache-dir)",
            )?)
        } else {
            None
        };
        let result = match backend {
            BackendChoice::Analytic => explore_checkpointed(
                &spec,
                &AnalyticBackend,
                workers,
                &self.cache,
                &self.layer_cache,
                checkpoint,
            ),
            BackendChoice::Event => explore_checkpointed(
                &spec,
                &EventBackend,
                workers,
                &self.cache,
                &self.layer_cache,
                checkpoint,
            ),
        };
        Ok(Response::Dse(dse_reply(
            &result,
            grid_points,
            backend,
            quant_names,
        )))
    }

    /// Compiles through the shared cache (or reports the compile failure).
    fn compiled(
        &self,
        model: &Model,
        arch: &ArchConfig,
        batch: u64,
    ) -> Result<bitfusion_compiler::CachedPlan, String> {
        arch.validate().map_err(|e| e.to_string())?;
        let cached = self.cache.get_or_compile(model, arch, batch);
        match cached.as_ref() {
            Ok(_) => Ok(cached),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Compile (via the artifact cache) + evaluate on the chosen backend
    /// through the layer-tier cache, reusing the simulator's report
    /// assembly (`run_plan_cached` builds the same [`PerfReport`] as
    /// `BitFusionSim::run_plan`) so the service path can never diverge
    /// from the library path.
    fn simulate(
        &self,
        model: &Model,
        arch: &ArchConfig,
        batch: u64,
        backend: BackendChoice,
    ) -> Result<PerfReport, String> {
        let cached = self.compiled(model, arch, batch)?;
        let plan = cached.as_ref().as_ref().expect("checked by compiled()");
        let energy = FusionEnergy::isca_45nm();
        Ok(match backend {
            BackendChoice::Analytic => run_plan_cached(
                &AnalyticBackend,
                plan,
                arch,
                &energy,
                &self.options,
                &self.layer_cache,
            ),
            BackendChoice::Event => run_plan_cached(
                &EventBackend,
                plan,
                arch,
                &energy,
                &self.options,
                &self.layer_cache,
            ),
        })
    }

    fn dispatch_bandwidth_sweep(
        &self,
        backend: BackendChoice,
        arch: &ArchConfig,
        model: &bitfusion_dnn::model::Model,
    ) -> Result<Sweep<u32>, bitfusion_compiler::CompileError> {
        match backend {
            BackendChoice::Analytic => bandwidth_sweep_tiered(
                &AnalyticBackend,
                arch,
                model,
                SWEEP_BANDWIDTH_BATCH,
                &SWEEP_BANDWIDTHS,
                self.options,
                &self.cache,
                &self.layer_cache,
            ),
            BackendChoice::Event => bandwidth_sweep_tiered(
                &EventBackend,
                arch,
                model,
                SWEEP_BANDWIDTH_BATCH,
                &SWEEP_BANDWIDTHS,
                self.options,
                &self.cache,
                &self.layer_cache,
            ),
        }
    }

    fn dispatch_batch_sweep(
        &self,
        backend: BackendChoice,
        arch: &ArchConfig,
        model: &bitfusion_dnn::model::Model,
    ) -> Result<Sweep<u64>, bitfusion_compiler::CompileError> {
        match backend {
            BackendChoice::Analytic => batch_sweep_tiered(
                &AnalyticBackend,
                arch,
                model,
                &SWEEP_BATCHES,
                self.options,
                &self.cache,
                &self.layer_cache,
            ),
            BackendChoice::Event => batch_sweep_tiered(
                &EventBackend,
                arch,
                model,
                &SWEEP_BATCHES,
                self.options,
                &self.cache,
                &self.layer_cache,
            ),
        }
    }
}

/// Parses an optional quantization override (`None` = the paper
/// assignment).
///
/// # Errors
///
/// Propagates [`QuantSpec::parse`] errors.
pub fn resolve_quant(quant: Option<&str>) -> Result<QuantSpec, String> {
    match quant {
        None => Ok(QuantSpec::paper()),
        Some(q) => QuantSpec::parse(q),
    }
}

/// A [`ModelSource`] resolved for evaluation: the concrete models the
/// executors run plus the canonical reply strings.
struct ResolvedModel {
    /// The (possibly re-quantized) model Bit Fusion and Stripes execute.
    model: Model,
    /// The 16-bit model the precision-blind baselines (Eyeriss, GPU) run
    /// in `compare`: the zoo's curated reference topology, or an external
    /// model forced to uniform 16-bit.
    reference: Model,
    /// The display name echoed in replies.
    name: String,
    /// The canonical quant spelling, when the request named one.
    quant: Option<String>,
}

/// Resolves a request's model source under an optional quantization
/// override. External models take exactly the same path as zoo networks
/// from here on — compilation, simulation, and both cache tiers key on
/// the model's structural fingerprint, never on this display name.
fn resolve_model(source: &ModelSource, quant: Option<&str>) -> Result<ResolvedModel, String> {
    let spec = resolve_quant(quant)?;
    let (base, reference, name) = match source {
        ModelSource::Zoo(n) => {
            let b = find_benchmark(n)?;
            (b.model(), b.reference_model(), b.name().to_string())
        }
        ModelSource::External(m) => {
            let reference = QuantSpec::parse("uniform16")
                .expect("uniform16 is a preset")
                .apply(m)?;
            (m.clone(), reference, m.name.clone())
        }
    };
    Ok(ResolvedModel {
        model: spec.apply(&base)?,
        reference,
        name,
        quant: quant.map(|_| spec.to_string()),
    })
}

/// Resolves a model name for `export-model`: a zoo benchmark
/// (case-insensitive) or one of the shipped modern workloads
/// (`attention-block`, `depthwise-net`).
///
/// # Errors
///
/// Names every valid choice.
pub fn find_model(name: &str) -> Result<Model, String> {
    match name.to_lowercase().as_str() {
        "attention-block" => Ok(bitfusion_dnn::modern::attention_block_example()),
        "depthwise-net" => Ok(bitfusion_dnn::modern::depthwise_net_example()),
        _ => find_benchmark(name).map(|b| b.model()).map_err(|_| {
            let names: Vec<String> = Benchmark::ALL
                .iter()
                .map(|b| b.name().to_lowercase())
                .chain(["attention-block".to_string(), "depthwise-net".to_string()])
                .collect();
            format!("unknown model `{name}` (expected one of: {})", names.join(", "))
        }),
    }
}

/// Resolves a benchmark name case-insensitively, or names every valid
/// choice in the error.
pub fn find_benchmark(name: &str) -> Result<Benchmark, String> {
    let needle = name.to_lowercase();
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().to_lowercase() == needle)
        .ok_or_else(|| {
            let names: Vec<String> = Benchmark::ALL
                .iter()
                .map(|b| b.name().to_lowercase())
                .collect();
            format!("unknown benchmark `{name}` (expected one of: {})", names.join(", "))
        })
}

/// The [`ArchConfig`] a preset names.
pub fn arch_config(preset: ArchPreset) -> ArchConfig {
    match preset {
        ArchPreset::Isca45nm => ArchConfig::isca_45nm(),
        ArchPreset::Gpu16nm => ArchConfig::gpu_16nm(),
        ArchPreset::StripesMatched => ArchConfig::stripes_matched(),
    }
}

fn arch_info(arch: &ArchConfig) -> ArchInfo {
    ArchInfo {
        name: arch.name.to_string(),
        rows: arch.rows as u64,
        cols: arch.cols as u64,
        ibuf_kb: (arch.ibuf_bytes / 1024) as u64,
        wbuf_kb: (arch.wbuf_bytes / 1024) as u64,
        obuf_kb: (arch.obuf_bytes / 1024) as u64,
        bandwidth_bits_per_cycle: arch.dram_bits_per_cycle as u64,
        freq_mhz: arch.freq_mhz as u64,
    }
}

fn energy_info(e: EnergyBreakdown) -> EnergyInfo {
    EnergyInfo {
        compute_pj: e.compute_pj,
        buffer_pj: e.buffer_pj,
        rf_pj: e.rf_pj,
        dram_pj: e.dram_pj,
    }
}

fn dse_reply(
    result: &DseResult,
    grid_points: usize,
    backend: BackendChoice,
    quants: Vec<String>,
) -> DseReply {
    // The comparison baseline: the fixed 8-bit datapath when explored
    // (the paper's heterogeneous-vs-uniform-8 headline), the first policy
    // otherwise. One policy alone has nothing to compare against.
    let speedup_baseline = if quants.len() < 2 {
        None
    } else if quants.iter().any(|q| q == "uniform8") {
        Some("uniform8".to_string())
    } else {
        Some(quants[0].clone())
    };
    let quant_speedups = match &speedup_baseline {
        None => Vec::new(),
        Some(baseline) => result
            .quant_speedups_vs(baseline)
            .into_iter()
            .map(|s| QuantSpeedupInfo {
                model: s.model,
                quant: s.quant,
                speedup: s.speedup,
                energy_ratio: s.energy_ratio,
            })
            .collect(),
    };
    DseReply {
        backend,
        quants,
        speedup_baseline,
        quant_speedups,
        grid_points: grid_points as u64,
        points: result.points.len() as u64,
        infeasible: result.infeasible.len() as u64,
        infeasible_sample: result
            .infeasible
            .iter()
            .take(3)
            .map(|p| InfeasibleInfo {
                model: p.model_name.clone(),
                arch: p.arch.to_string(),
                error: p.error.to_string(),
            })
            .collect(),
        // Spec-level sharing (deterministic), not cache-state counters: a
        // serve session with a warm cache must answer byte-identically to a
        // cold one-shot invocation.
        compile_hits: result.spec_compile_hits(),
        compile_misses: result.compile_unique,
        layer_hits: result.spec_layer_hits(),
        layer_misses: result.layer_unique,
        frontier: result
            .pareto_frontier()
            .iter()
            .map(|s| FrontierPoint {
                arch: arch_info(&s.arch),
                quant: s.quant.clone(),
                cycles: s.total_cycles,
                energy_pj: s.total_energy_pj,
                area_mm2: s.area_mm2,
                bandwidth_starved: s.stalls.bandwidth_starved,
                compute_starved: s.stalls.compute_starved,
            })
            .collect(),
    }
}

/// Chip area of an architecture under the session's node — re-exported
/// convenience for renderers.
pub fn chip_area_mm2(arch: &ArchConfig, options: &SimOptions) -> f64 {
    ChipArea::of(arch, options.node).chip_mm2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitfusion_sim::BitFusionSim;

    #[test]
    fn report_matches_direct_simulation() {
        let session = Session::new();
        let resp = session.handle(&Request::Report {
            model: ModelSource::zoo("lstm"),
            batch: 16,
            bandwidth: None,
            arch: ArchPreset::Isca45nm,
            backend: None,
            quant: None,
        });
        let direct = BitFusionSim::new(ArchConfig::isca_45nm())
            .run(&Benchmark::Lstm.model(), 16)
            .unwrap();
        match resp {
            Response::Report(r) => {
                assert_eq!(r.cycles, direct.total_cycles());
                assert_eq!(r.macs, direct.total_macs());
                assert_eq!(r.dram_bits, direct.total_dram_bits());
                assert_eq!(r.benchmark, "LSTM");
                assert_eq!(r.layers.len(), direct.layers.len());
                assert!(
                    (r.energy_per_input.total_pj()
                        - direct.energy_per_input().total_pj())
                    .abs()
                        < 1e-9
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repeated_requests_are_byte_identical_and_warm() {
        let session = Session::new();
        let req = Request::Report {
            model: ModelSource::zoo("rnn"),
            batch: 4,
            bandwidth: Some(256),
            arch: ArchPreset::Isca45nm,
            backend: Some(BackendChoice::Event),
            quant: None,
        };
        let first = session.handle(&req).encode();
        let misses_after_first = session.cache_stats().misses;
        let second = session.handle(&req).encode();
        assert_eq!(first, second);
        assert_eq!(session.cache_stats().misses, misses_after_first, "no recompile");
        assert!(session.cache_stats().hits > 0);
    }

    #[test]
    fn commands_share_one_artifact() {
        // report, asm, and the dse corner at the same key compile once.
        let session = Session::new();
        session.handle(&Request::Report {
            model: ModelSource::zoo("rnn"),
            batch: 16,
            bandwidth: None,
            arch: ArchPreset::Isca45nm,
            backend: None,
            quant: None,
        });
        assert_eq!(session.cache_stats().misses, 1);
        session.handle(&Request::Asm {
            model: ModelSource::zoo("rnn"),
            batch: 16,
            arch: ArchPreset::Isca45nm,
            layer: None,
        });
        assert_eq!(session.cache_stats().misses, 1, "asm reused the report's plan");
        // The bandwidth sweep shares the same geometry key too.
        session.handle(&Request::Sweep {
            model: ModelSource::zoo("rnn"),
            axis: SweepAxis::Bandwidth,
            backend: None,
            quant: None,
        });
        assert_eq!(
            session.cache_stats().misses,
            1,
            "bandwidth axis reused the same artifact"
        );
    }

    #[test]
    fn layer_tier_warms_across_commands_without_changing_bytes() {
        let session = Session::new();
        let req = Request::Report {
            model: ModelSource::zoo("resnet-18"),
            batch: 16,
            bandwidth: None,
            arch: ArchPreset::Isca45nm,
            backend: None,
            quant: None,
        };
        let first = session.handle(&req).encode();
        let stats = session.layer_cache_stats();
        assert!(stats.misses > 0, "cold layer cache must evaluate");
        assert!(
            stats.hits > 0,
            "ResNet-18 repeats basic blocks within one plan: {stats:?}"
        );
        // The reply reports spec-level sharing and names the tier.
        assert!(first.contains(r#""layer_cache":{"hits":"#), "{first}");
        let second = session.handle(&req).encode();
        assert_eq!(first, second, "layer-cache warmth must never change bytes");
        assert_eq!(
            session.layer_cache_stats().misses,
            stats.misses,
            "warm repeat evaluates nothing new"
        );
    }

    #[test]
    fn sweep_and_dse_replies_carry_layer_counters() {
        let session = Session::new();
        match session.handle(&Request::Sweep {
            model: ModelSource::zoo("resnet-18"),
            axis: SweepAxis::Bandwidth,
            backend: None,
            quant: None,
        }) {
            Response::Sweep(r) => {
                assert!(r.layer_misses > 0);
                assert!(
                    r.layer_hits > 0,
                    "repeated shapes across the sweep: {} hits / {} misses",
                    r.layer_hits,
                    r.layer_misses
                );
            }
            other => panic!("{other:?}"),
        }
        let params = DseParams {
            rows: vec![16],
            cols: vec![16],
            bandwidth: vec![128],
            batches: vec![16],
            networks: Some(vec!["resnet-18".into()]),
            workers: 1,
            ..DseParams::default()
        };
        match session.handle(&Request::Dse(params)) {
            Response::Dse(r) => {
                assert!(r.layer_misses > 0);
                assert!(r.layer_hits > 0, "{r:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_responses_not_panics() {
        let session = Session::new();
        for req in [
            Request::Report {
                model: ModelSource::zoo("nope"),
                batch: 16,
                bandwidth: None,
                arch: ArchPreset::Isca45nm,
                backend: None,
                quant: None,
            },
            Request::Asm {
                model: ModelSource::zoo("rnn"),
                batch: 1,
                arch: ArchPreset::Isca45nm,
                layer: Some("no-such-layer".into()),
            },
        ] {
            match session.handle(&req) {
                Response::Error { message } => {
                    assert!(!message.is_empty());
                }
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn compare_beats_the_baselines() {
        let session = Session::new();
        match session.handle(&Request::Compare {
            model: ModelSource::zoo("cifar-10"),
            batch: 16,
            backend: None,
            quant: None,
        }) {
            Response::Compare(r) => {
                assert_eq!(r.baselines.len(), 3);
                for b in &r.baselines {
                    assert!(b.speedup > 1.0, "{}: {}", b.name, b.speedup);
                }
                assert!(r.baselines[0].energy_ratio.unwrap() > 1.0);
                assert!(r.baselines[2].energy_ratio.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dse_reply_reports_spec_level_sharing() {
        let session = Session::new();
        let params = DseParams {
            rows: vec![16, 32],
            cols: vec![16],
            bandwidth: vec![64, 128],
            batches: vec![16],
            networks: Some(vec!["lstm".into(), "rnn".into()]),
            workers: 1,
            ..DseParams::default()
        };
        let first = session.handle(&Request::Dse(params.clone())).encode();
        // Warm cache: the reply must not change.
        let second = session.handle(&Request::Dse(params)).encode();
        assert_eq!(first, second);
        // 4 archs × 2 nets = 8 points; 2 geometries × 2 nets = 4 compiles.
        assert!(first.contains(r#""compile":{"hits":4,"misses":4}"#), "{first}");
    }

    #[test]
    fn dse_reply_names_infeasible_corners() {
        let session = Session::new();
        let params = DseParams {
            // A 512x512 array with 3 KB of SRAM: no tiling fits.
            rows: vec![512],
            cols: vec![512],
            ibuf_kb: vec![1],
            wbuf_kb: vec![1],
            obuf_kb: vec![1],
            bandwidth: vec![128],
            batches: vec![4],
            networks: Some(vec!["svhn".into()]),
            workers: 1,
            ..DseParams::default()
        };
        match session.handle(&Request::Dse(params)) {
            Response::Dse(r) => {
                assert_eq!(r.infeasible, 1);
                assert_eq!(r.infeasible_sample.len(), 1);
                let p = &r.infeasible_sample[0];
                assert_eq!(p.model, "SVHN");
                assert!(!p.arch.is_empty());
                assert!(p.error.contains("no tiling"), "{p:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn options_thread_through_reports() {
        let slow = Session::new().with_options(SimOptions {
            systolic_efficiency: 0.5,
            ..SimOptions::default()
        });
        let fast = Session::new();
        let req = Request::Report {
            model: ModelSource::zoo("vgg-7"),
            batch: 4,
            bandwidth: None,
            arch: ArchPreset::Isca45nm,
            backend: None,
            quant: None,
        };
        let (Response::Report(a), Response::Report(b)) = (slow.handle(&req), fast.handle(&req))
        else {
            panic!("expected reports");
        };
        assert!(a.cycles > b.cycles, "lower efficiency must cost cycles");
    }

    /// A scratch cache directory removed on drop.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "bitfusion-session-test-{}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn disk_tier_makes_restarts_byte_identical() {
        let dir = TempDir::new("restart");
        let requests = [
            Request::Report {
                model: ModelSource::zoo("rnn"),
                batch: 4,
                bandwidth: Some(256),
                arch: ArchPreset::Isca45nm,
                backend: Some(BackendChoice::Event),
                quant: None,
            },
            Request::Sweep {
                model: ModelSource::zoo("lstm"),
                axis: SweepAxis::Bandwidth,
                backend: None,
                quant: None,
            },
        ];
        // Cold process: everything computes, write-behind populates disk.
        let cold: Vec<String> = {
            let session = Session::new().with_cache_dir(&dir.0).unwrap();
            let replies = requests.iter().map(|r| session.handle(r).encode()).collect();
            let disk = session.store_stats().unwrap();
            assert_eq!(disk.plan_hits, 0, "first process finds an empty store");
            assert!(disk.writes > 0, "write-behind must persist: {disk:?}");
            replies
        };
        // Restarted process (fresh memory tiers, same directory): every
        // plan and layer loads from disk, and the bytes cannot tell.
        let session = Session::new().with_cache_dir(&dir.0).unwrap();
        let warm: Vec<String> = requests.iter().map(|r| session.handle(r).encode()).collect();
        assert_eq!(cold, warm, "serving tier must never change bytes");
        let disk = session.store_stats().unwrap();
        assert!(disk.plan_hits > 0, "{disk:?}");
        assert!(disk.layer_hits > 0, "{disk:?}");
        assert_eq!(disk.corrupt, 0, "{disk:?}");
        // Without --cache-dir there is no disk tier to report.
        assert!(Session::new().store_stats().is_none());
    }

    #[test]
    fn second_session_on_a_cache_dir_is_refused() {
        let dir = TempDir::new("locked");
        let holder = Session::new().with_cache_dir(&dir.0).unwrap();
        let err = Session::new().with_cache_dir(&dir.0).unwrap_err();
        assert!(err.contains("already in use"), "{err}");
        assert!(err.contains("LOCK"), "diagnostic names the lock path: {err}");
        drop(holder);
        // Releasing the holder frees the directory for the next process.
        Session::new().with_cache_dir(&dir.0).unwrap();
    }

    #[test]
    fn dse_resume_needs_a_store_and_reproduces_bytes() {
        let params = DseParams {
            rows: vec![8],
            cols: vec![8],
            bandwidth: vec![64, 128],
            batches: vec![4],
            networks: Some(vec!["rnn".into()]),
            workers: 1,
            resume: true,
            ..DseParams::default()
        };
        // Resume without a persistent store is a client error, not a panic.
        match Session::new().handle(&Request::Dse(params.clone())) {
            Response::Error { message } => {
                assert!(message.contains("--cache-dir"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }
        let dir = TempDir::new("resume");
        let first = {
            let session = Session::new().with_cache_dir(&dir.0).unwrap();
            session.handle(&Request::Dse(params.clone())).encode()
        };
        // A restarted run restores every point from the checkpoint and
        // emits the exact frontier bytes of the uninterrupted run.
        let session = Session::new().with_cache_dir(&dir.0).unwrap();
        let second = session.handle(&Request::Dse(params)).encode();
        assert_eq!(first, second);
        let disk = session.store_stats().unwrap();
        assert_eq!(disk.point_hits, 2, "both design points restore: {disk:?}");
    }
}
