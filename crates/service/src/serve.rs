//! The long-running JSON-lines loop behind `bitfusion-cli serve`.
//!
//! Framing: one request per input line, one response per output line, in
//! the same order. Blank lines are ignored; a line that fails to parse
//! produces an `{"reply":"error",...}` response in its slot rather than
//! killing the loop, so a scripted client can correlate responses to
//! requests positionally.
//!
//! Requests are dispatched concurrently across the sim crate's worker
//! pool ([`for_each_ordered`]) — an expensive `dse` does not
//! block a cheap `report` from *computing*, while the reorder buffer
//! keeps *output* strictly in request order. Combined with the session's
//! determinism contract, each output line is byte-identical to what the
//! corresponding one-shot `--json` invocation prints.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};

use bitfusion_sim::pool::for_each_ordered;

use crate::protocol::{Request, Response};
use crate::session::Session;

/// Clamps a nested `dse` request's "all cores" default to sequential.
///
/// Both the stdin serve pool and the network server's connection threads
/// already use the cores; a `dse` defaulting to `workers = 0` (all cores)
/// on top would oversubscribe by up to cores². Results are
/// worker-count-independent (the engine's determinism contract), so the
/// clamp never changes response bytes. An explicit worker count is
/// honoured as given.
pub fn clamp_nested_workers(request: &mut Request) {
    if let Request::Dse(p) = request {
        if p.workers == 0 {
            p.workers = 1;
        }
    }
}

/// What one [`serve`] run processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Lines answered (including error responses).
    pub responses: u64,
    /// Responses that were `{"reply":"error",...}`.
    pub errors: u64,
}

/// Runs the JSON-lines loop: reads requests from `input` until EOF,
/// writes one response line each to `output` (flushed per line, so a
/// piped client sees answers as they are ready), dispatching across
/// `workers` threads (`0` = all cores).
///
/// # Errors
///
/// Propagates I/O failures from the reader or writer.
pub fn serve<R: BufRead + Send, W: Write>(
    session: &Session,
    input: R,
    mut output: W,
    workers: usize,
) -> std::io::Result<ServeSummary> {
    let workers = if workers == 0 {
        bitfusion_sim::pool::default_workers()
    } else {
        workers
    };
    let mut summary = ServeSummary::default();
    let mut io_error: Option<std::io::Error> = None;
    // Once the writer fails (e.g. the client hung up — EPIPE), there is
    // nobody left to answer: workers stop evaluating and just drain.
    let output_dead = AtomicBool::new(false);
    let lines = input
        .lines()
        .filter(|line| line.as_ref().map_or(true, |l| !l.trim().is_empty()));
    for_each_ordered(
        lines,
        workers,
        |_, line| match line {
            Err(e) => Err(e),
            Ok(_) if output_dead.load(Ordering::Relaxed) => Ok(Response::Error {
                message: "output closed".to_string(),
            }),
            Ok(text) => Ok(match Request::parse(text.trim()) {
                Ok(mut request) => {
                    clamp_nested_workers(&mut request);
                    session.handle(&request)
                }
                Err(message) => Response::Error { message },
            }),
        },
        |_, outcome| {
            if io_error.is_some() {
                return; // already failed; drain remaining results
            }
            match outcome {
                Err(e) => {
                    output_dead.store(true, Ordering::Relaxed);
                    io_error = Some(e);
                }
                Ok(response) => {
                    summary.responses += 1;
                    if matches!(response, Response::Error { .. }) {
                        summary.errors += 1;
                    }
                    let line = response.encode();
                    if let Err(e) = writeln!(output, "{line}").and_then(|()| output.flush()) {
                        output_dead.store(true, Ordering::Relaxed);
                        io_error = Some(e);
                    }
                }
            }
        },
    );
    match io_error {
        Some(e) => Err(e),
        None => Ok(summary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_script(script: &str, workers: usize) -> (Vec<String>, ServeSummary) {
        let session = Session::new();
        let mut out = Vec::new();
        let summary = serve(&session, Cursor::new(script), &mut out, workers).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), summary)
    }

    #[test]
    fn one_response_line_per_request_line_in_order() {
        let script = "\
{\"cmd\":\"report\",\"benchmark\":\"rnn\",\"batch\":1}\n\
\n\
{\"cmd\":\"list\"}\n\
{\"cmd\":\"report\",\"benchmark\":\"lstm\",\"batch\":1}\n";
        for workers in [1, 4] {
            let (lines, summary) = run_script(script, workers);
            assert_eq!(lines.len(), 3, "{workers} workers (blank line skipped)");
            assert_eq!(summary.responses, 3);
            assert_eq!(summary.errors, 0);
            assert!(lines[0].contains("\"benchmark\":\"RNN\""), "{}", lines[0]);
            assert!(lines[1].starts_with("{\"reply\":\"list\""));
            assert!(lines[2].contains("\"benchmark\":\"LSTM\""));
            for l in &lines {
                Response::parse(l).expect("every output line parses");
            }
        }
    }

    #[test]
    fn malformed_lines_answer_errors_without_killing_the_loop() {
        let script = "not json\n{\"cmd\":\"list\"}\n{\"cmd\":\"nope\"}\n";
        let (lines, summary) = run_script(script, 2);
        assert_eq!(lines.len(), 3);
        assert_eq!(summary.errors, 2);
        assert!(lines[0].starts_with("{\"reply\":\"error\""));
        assert!(lines[1].starts_with("{\"reply\":\"list\""));
        assert!(lines[2].contains("nope"));
    }

    #[test]
    fn concurrent_and_sequential_outputs_are_byte_identical() {
        // A mixed script where the expensive request comes first: the
        // reorder buffer must still emit it first.
        let script = "\
{\"cmd\":\"sweep\",\"benchmark\":\"lstm\",\"axis\":\"batch\"}\n\
{\"cmd\":\"report\",\"benchmark\":\"rnn\",\"batch\":1}\n\
{\"cmd\":\"compare\",\"benchmark\":\"rnn\",\"batch\":1}\n\
{\"cmd\":\"asm\",\"benchmark\":\"rnn\",\"batch\":1}\n";
        let (sequential, _) = run_script(script, 1);
        let (parallel, _) = run_script(script, 4);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn a_dead_output_stops_evaluation() {
        struct DeadWriter;
        impl std::io::Write for DeadWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let session = Session::new();
        let script = "\
{\"cmd\":\"report\",\"benchmark\":\"rnn\",\"batch\":1}\n\
{\"cmd\":\"report\",\"benchmark\":\"lstm\",\"batch\":1}\n\
{\"cmd\":\"report\",\"benchmark\":\"vgg-7\",\"batch\":1}\n";
        let err = serve(&session, Cursor::new(script), DeadWriter, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // Only the first request (whose response hit the dead pipe) was
        // evaluated; the rest were skipped, not simulated.
        assert_eq!(session.cache_stats().misses, 1);
    }

    #[test]
    fn serve_output_matches_fresh_one_shot_sessions() {
        // Each line must be byte-identical to handling the request on a
        // fresh session (what a one-shot CLI invocation does), even though
        // the serving session's cache warms up across the script.
        let script = "\
{\"cmd\":\"report\",\"benchmark\":\"rnn\",\"batch\":16}\n\
{\"cmd\":\"sweep\",\"benchmark\":\"rnn\",\"axis\":\"bandwidth\"}\n\
{\"cmd\":\"report\",\"benchmark\":\"rnn\",\"batch\":16}\n\
{\"cmd\":\"dse\",\"rows\":[16,32],\"cols\":[16],\"bandwidth\":[64,128],\"networks\":[\"rnn\"],\"workers\":1}\n";
        let (lines, _) = run_script(script, 2);
        for (i, text) in script.lines().enumerate() {
            let fresh = Session::new();
            let expect = fresh.handle(&Request::parse(text).unwrap()).encode();
            assert_eq!(lines[i], expect, "line {i}");
        }
    }
}
