//! Fixed-bucket latency histogram behind the `stats` reply.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts samples
//! in `[2^i, 2^(i+1))` µs (bucket 0 also absorbs sub-microsecond
//! samples). Percentile queries answer the upper bound of the first
//! bucket whose cumulative count reaches the rank, so a reported pNN is
//! conservative — never below the true pNN — while recording stays a
//! single relaxed atomic increment with no allocation and no locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets. The last bucket's lower bound is
/// `2^31` µs ≈ 36 minutes; anything slower lands there.
const BUCKETS: usize = 32;

/// Lock-free power-of-two latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    /// Exact slowest sample, for the `max_us` stat (a pure bucket
    /// histogram would round it up to a power of two).
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket(us: u64) -> usize {
        // floor(log2(us)) clamped to the bucket range; 0 and 1 µs share
        // bucket 0.
        (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.counts[Self::bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// Exact slowest sample in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The `q`-quantile's bucket upper bound in microseconds (0 when
    /// empty). `q` is in `[0, 1]`; e.g. `0.5` for p50.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().fold(0u64, |a, &b| a.saturating_add(b));
        if total == 0 {
            return 0;
        }
        // Rank of the sample that answers the quantile, 1-based. ceil via
        // float is fine: total fits f64 exactly for any realistic count.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                // Upper bound of bucket i is 2^(i+1) µs; the last bucket
                // is unbounded, so answer the exact observed max instead.
                if i + 1 >= BUCKETS {
                    return self.max_us();
                }
                return 1u64 << (i + 1);
            }
        }
        self.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(3), 1);
        assert_eq!(LatencyHistogram::bucket(4), 2);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~100 µs), 10 slow (~5000 µs).
        for _ in 0..90 {
            h.record_us(100);
        }
        for _ in 0..10 {
            h.record_us(5_000);
        }
        assert_eq!(h.count(), 100);
        // 100 µs lands in [64, 128): upper bound 128.
        assert_eq!(h.quantile_us(0.5), 128);
        assert_eq!(h.quantile_us(0.9), 128);
        // 5000 µs lands in [4096, 8192): upper bound 8192.
        assert_eq!(h.quantile_us(0.99), 8192);
        assert!(h.quantile_us(0.99) >= 5_000);
        assert_eq!(h.max_us(), 5_000);
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let h = LatencyHistogram::new();
        h.record_us(300);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            // 300 µs lands in [256, 512).
            assert_eq!(h.quantile_us(q), 512, "q={q}");
        }
        assert_eq!(h.max_us(), 300);
    }

    #[test]
    fn overflow_bucket_answers_exact_max() {
        let h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
    }
}
