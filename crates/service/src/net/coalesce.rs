//! Cross-connection request coalescing.
//!
//! Identical in-flight requests — keyed by their canonical wire bytes,
//! i.e. [`crate::protocol::Request::encode`] of the *parsed* request, so
//! field order and whitespace in the client's spelling don't matter —
//! evaluate once. The first arrival becomes the **leader** and computes;
//! later arrivals become **followers** and block until the leader
//! publishes, then fan the byte-identical response line out. This is
//! sound because of the session determinism contract: for a fixed server
//! config the response bytes are a pure function of the request bytes,
//! so sharing the leader's bytes is indistinguishable from evaluating
//! again (`stats` never reaches the coalescer — the server answers it
//! directly).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight evaluation that followers can wait on.
#[derive(Debug, Default)]
struct Flight {
    /// The published response line, once the leader finishes.
    done: Mutex<Option<String>>,
    ready: Condvar,
}

impl Flight {
    fn publish(&self, response: String) {
        *self.done.lock().unwrap() = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> String {
        let mut done = self.done.lock().unwrap();
        while done.is_none() {
            done = self.ready.wait(done).unwrap();
        }
        done.clone().unwrap()
    }
}

/// What [`Coalescer::join`] decided for one request.
#[derive(Debug)]
pub enum Joined<'a> {
    /// This caller evaluates; complete the guard with the response line.
    Leader(LeaderGuard<'a>),
    /// An identical request is already evaluating; the byte-identical
    /// response it produced.
    Follower(String),
}

/// Deduplicates identical in-flight requests across connections.
#[derive(Debug, Default)]
pub struct Coalescer {
    in_flight: Mutex<HashMap<String, Arc<Flight>>>,
}

impl Coalescer {
    /// An empty coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the evaluation of `key` (the request's canonical bytes).
    ///
    /// The first caller for a key becomes the leader and must call
    /// [`LeaderGuard::publish`] with the response line (dropping the
    /// guard without publishing — e.g. on panic — publishes a fallback
    /// error so followers never hang). Concurrent callers with the same
    /// key block until then and receive the same bytes.
    pub fn join(&self, key: &str) -> Joined<'_> {
        let flight = {
            let mut map = self.in_flight.lock().unwrap();
            if let Some(flight) = map.get(key) {
                Arc::clone(flight)
            } else {
                let flight = Arc::new(Flight::default());
                map.insert(key.to_string(), Arc::clone(&flight));
                return Joined::Leader(LeaderGuard {
                    coalescer: self,
                    key: key.to_string(),
                    published: false,
                });
            }
        };
        Joined::Follower(flight.wait())
    }

    /// Keys currently evaluating (for tests and stats).
    pub fn in_flight(&self) -> usize {
        self.in_flight.lock().unwrap().len()
    }

    /// Followers currently holding `key`'s flight (joined and waiting, or
    /// about to wait). Lets a test or the server observe that waiters are
    /// queued before the leader publishes.
    pub fn waiters(&self, key: &str) -> usize {
        self.in_flight
            .lock()
            .unwrap()
            .get(key)
            // One strong count is the map's own reference.
            .map_or(0, |f| Arc::strong_count(f) - 1)
    }

    fn finish(&self, key: &str, response: String) {
        // Remove BEFORE publishing: a request arriving after removal
        // starts a fresh flight (correct — the result may no longer be
        // in-flight), while one that joined earlier still holds its Arc
        // and wakes on publish.
        let flight = self.in_flight.lock().unwrap().remove(key);
        if let Some(flight) = flight {
            flight.publish(response);
        }
    }
}

/// Obligation to publish the leader's response; see [`Coalescer::join`].
#[derive(Debug)]
pub struct LeaderGuard<'a> {
    coalescer: &'a Coalescer,
    key: String,
    published: bool,
}

impl LeaderGuard<'_> {
    /// Publishes the response line to every follower and retires the
    /// flight.
    pub fn publish(mut self, response: String) {
        self.published = true;
        self.coalescer.finish(&self.key, response);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            // Leader panicked (or was otherwise abandoned): wake the
            // followers with a well-formed error instead of hanging them.
            self.coalescer.finish(
                &self.key,
                crate::protocol::Response::Error {
                    message: "internal: evaluation abandoned".to_string(),
                }
                .encode(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn sequential_requests_each_lead() {
        let c = Coalescer::new();
        for _ in 0..3 {
            match c.join("k") {
                Joined::Leader(guard) => guard.publish("r".to_string()),
                Joined::Follower(_) => panic!("nothing in flight"),
            }
        }
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn concurrent_identical_requests_evaluate_once() {
        const WAITERS: usize = 8;
        let c = Coalescer::new();
        let evaluations = AtomicUsize::new(0);
        let (c, evaluations) = (&c, &evaluations);
        thread::scope(|scope| {
            // Take the lead deterministically, then release it only after
            // every follower holds the flight.
            let Joined::Leader(guard) = c.join("k") else {
                panic!("first join must lead");
            };
            evaluations.fetch_add(1, Ordering::SeqCst);
            let handles: Vec<_> = (0..WAITERS)
                .map(|_| {
                    scope.spawn(move || match c.join("k") {
                        Joined::Leader(_) => {
                            evaluations.fetch_add(1, Ordering::SeqCst);
                            panic!("leader still holds the flight");
                        }
                        Joined::Follower(r) => r,
                    })
                })
                .collect();
            // Every follower clones the flight Arc before waiting, so the
            // waiter count reaching WAITERS proves they have all joined.
            while c.waiters("k") < WAITERS {
                thread::yield_now();
            }
            guard.publish("answer".to_string());
            for h in handles {
                assert_eq!(h.join().unwrap(), "answer");
            }
        });
        assert_eq!(evaluations.load(Ordering::SeqCst), 1);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Coalescer::new();
        let Joined::Leader(a) = c.join("a") else {
            panic!()
        };
        let Joined::Leader(b) = c.join("b") else {
            panic!()
        };
        assert_eq!(c.in_flight(), 2);
        a.publish("ra".into());
        b.publish("rb".into());
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn abandoned_leader_frees_followers_with_an_error() {
        let c = Coalescer::new();
        let barrier = Barrier::new(2);
        let (c, barrier) = (&c, &barrier);
        thread::scope(|scope| {
            let Joined::Leader(guard) = c.join("k") else {
                panic!()
            };
            let follower = scope.spawn(move || {
                barrier.wait();
                match c.join("k") {
                    Joined::Follower(r) => r,
                    Joined::Leader(g) => {
                        // Raced past the drop; lead a fresh flight.
                        g.publish("fresh".into());
                        "fresh".to_string()
                    }
                }
            });
            barrier.wait();
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(guard); // no publish: simulates a panicking evaluation
            let got = follower.join().unwrap();
            assert!(
                got == "fresh" || got.contains("evaluation abandoned"),
                "{got}"
            );
        });
        assert_eq!(c.in_flight(), 0);
    }
}
