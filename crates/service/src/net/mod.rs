//! The concurrent network server behind `bitfusion-cli serve --listen`
//! and `--unix`.
//!
//! Architecture: a `std::net` listener (TCP or unix socket — no async
//! runtime), one OS thread per connection in the scoped style of
//! `bitfusion_sim::pool`, every connection speaking the same JSON-lines
//! protocol as the stdin loop against one shared [`Session`] — and
//! therefore one process-global `ArtifactCache` + `LayerPerfCache`, so a
//! plan any client compiled is warm for all of them.
//!
//! Three server-level mechanisms sit between the socket and the session:
//!
//! - **Admission** ([`bitfusion_sim::pool::Gate`]): at most `workers`
//!   requests evaluate at once, at most `max_queue` wait FIFO behind
//!   them, and anything beyond that is *shed* — answered with a
//!   well-formed `{"reply":"error",...}` line immediately, never a
//!   dropped connection, so a scripted client can always correlate
//!   responses positionally.
//! - **Coalescing** ([`coalesce::Coalescer`]): identical in-flight
//!   requests (canonical wire bytes) evaluate once; followers receive
//!   the leader's byte-identical response line. Sound because response
//!   bytes are a pure function of request bytes (the determinism
//!   contract).
//! - **Observation** ([`histogram::LatencyHistogram`] + atomic
//!   counters): the `stats` request — answered by the server itself,
//!   bypassing admission so it stays live under overload — reports both
//!   cache tiers, queue state, and p50/p90/p99 latency. It is the one
//!   reply whose bytes depend on server state; every other reply remains
//!   byte-identical to a fresh one-shot session.
//!
//! Shutdown: a `shutdown` request on a unix socket (trusted local
//! admin; TCP clients get an error), or the shared stop flag (the CLI
//! wires SIGINT to it). The listener stops accepting, connection
//! threads finish their current request and close, and `run` returns
//! after the drain.

pub mod coalesce;
pub mod histogram;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bitfusion_sim::pool::{Admission, Gate};

use crate::protocol::{CacheTierInfo, DiskStoreInfo, LatencyInfo, Request, Response, StatsReply};
use crate::serve::clamp_nested_workers;
use crate::session::Session;
use coalesce::{Coalescer, Joined};
use histogram::LatencyHistogram;

/// How often blocked reads wake to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How often the nonblocking accept loop retries. Shorter than the read
/// poll: it bounds how long a fresh client waits to be picked up.
const ACCEPT_INTERVAL: Duration = Duration::from_millis(20);

/// The message every load-shed request is answered with (pinned by
/// tests and the DESIGN.md error-shape contract).
pub const SHED_MESSAGE: &str = "server overloaded: admission queue full";

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Concurrent evaluation slots (`0` = all cores).
    pub workers: usize,
    /// Admissions that may wait behind the slots before shedding.
    pub max_queue: usize,
    /// Close a connection after this long with no bytes from the client
    /// (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Honour the `shutdown` request (the CLI enables this for unix
    /// sockets only — a remote TCP client must not stop the server).
    pub allow_shutdown: bool,
    /// Externally visible stop flag: set it (e.g. from a SIGINT handler)
    /// and the server drains and returns.
    pub stop: Arc<AtomicBool>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 0,
            max_queue: 64,
            idle_timeout: Some(Duration::from_secs(300)),
            allow_shutdown: false,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// What one [`run`] served, reported after the drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Workload response lines written (error responses included,
    /// `stats`/`shutdown` answers excluded).
    pub responses: u64,
    /// Responses that were `{"reply":"error",...}` (shed included).
    pub errors: u64,
    /// Requests answered from an identical in-flight evaluation.
    pub coalesced: u64,
}

/// A bound listening socket, ready for [`run`].
#[derive(Debug)]
pub enum NetListener {
    /// A TCP listener (e.g. `127.0.0.1:7040`).
    Tcp(TcpListener),
    /// A unix-domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl NetListener {
    /// Binds a TCP listener.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (bad address, port in use).
    pub fn bind_tcp(addr: &str) -> std::io::Result<Self> {
        Ok(NetListener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a unix-socket listener at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (a stale socket file from an unclean
    /// exit must be removed first).
    #[cfg(unix)]
    pub fn bind_unix(path: &str) -> std::io::Result<Self> {
        Ok(NetListener::Unix(UnixListener::bind(path)?))
    }

    /// Human-readable bound address (the CLI's "listening on" line).
    pub fn local_display(&self) -> String {
        match self {
            NetListener::Tcp(l) => l
                .local_addr()
                .map_or_else(|_| "tcp(?)".to_string(), |a| a.to_string()),
            #[cfg(unix)]
            NetListener::Unix(l) => l.local_addr().ok().and_then(|a| {
                a.as_pathname().map(|p| p.display().to_string())
            }).unwrap_or_else(|| "unix(?)".to_string()),
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            NetListener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> std::io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // The accept loop polls nonblocking; the connection itself
                // must block (with a read timeout) again.
                s.set_nonblocking(false)?;
                Ok(NetStream::Tcp(s))
            }
            #[cfg(unix)]
            NetListener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(NetStream::Unix(s))
            }
        }
    }
}

/// One accepted connection, transport-erased.
#[derive(Debug)]
enum NetStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    fn try_clone(&self) -> std::io::Result<NetStream> {
        match self {
            NetStream::Tcp(s) => Ok(NetStream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            NetStream::Unix(s) => Ok(NetStream::Unix(s.try_clone()?)),
        }
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(Some(dur)),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_read_timeout(Some(dur)),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// Shared server state every connection thread sees.
struct ServerState<'a> {
    session: &'a Session,
    gate: Gate,
    coalescer: Coalescer,
    histogram: LatencyHistogram,
    config: &'a NetConfig,
    connections_active: AtomicU64,
    connections_total: AtomicU64,
    received: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    coalesced: AtomicU64,
}

impl ServerState<'_> {
    fn stats(&self) -> StatsReply {
        let tier = |s: bitfusion_compiler::CacheStats| CacheTierInfo {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            len: s.len as u64,
            capacity: s.capacity as u64,
        };
        StatsReply {
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            queue_depth: self.gate.queue_depth() as u64,
            queue_capacity: self.gate.queue_capacity() as u64,
            in_flight: self.gate.in_flight() as u64,
            workers: self.gate.slots() as u64,
            artifact_cache: tier(self.session.cache_stats()),
            layer_cache: tier(self.session.layer_cache_stats()),
            latency: LatencyInfo {
                count: self.histogram.count(),
                p50_us: self.histogram.quantile_us(0.50),
                p90_us: self.histogram.quantile_us(0.90),
                p99_us: self.histogram.quantile_us(0.99),
                max_us: self.histogram.max_us(),
            },
            disk: self.session.store_stats().map(|s| DiskStoreInfo {
                plan_hits: s.plan_hits,
                plan_misses: s.plan_misses,
                layer_hits: s.layer_hits,
                layer_misses: s.layer_misses,
                point_hits: s.point_hits,
                point_misses: s.point_misses,
                writes: s.writes,
                corrupt: s.corrupt,
            }),
        }
    }

    /// Produces the response line for one request line, maintaining the
    /// workload counters (server-level `stats`/`shutdown` requests are
    /// answered but not counted, so polling `stats` never perturbs the
    /// numbers it reports). Everything that is not a server-level request
    /// flows coalescer → gate → session.
    fn answer(&self, line: &str) -> String {
        let mut request = match Request::parse(line.trim()) {
            Ok(r) => r,
            Err(message) => {
                self.received.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Response::Error { message }.encode();
            }
        };
        match request {
            // Answered by the server, bypassing admission: must stay live
            // when the gate is saturated, or it can't diagnose overload.
            Request::Stats => return Response::Stats(self.stats()).encode(),
            Request::Shutdown => {
                return if self.config.allow_shutdown {
                    self.config.stop.store(true, Ordering::SeqCst);
                    Response::Shutdown.encode()
                } else {
                    Response::Error {
                        message: "shutdown is only honoured on a unix socket (serve --unix)"
                            .to_string(),
                    }
                    .encode()
                }
            }
            _ => {}
        }
        self.received.fetch_add(1, Ordering::Relaxed);
        clamp_nested_workers(&mut request);
        let key = request.encode();
        let started = Instant::now();
        let response = match self.coalescer.join(&key) {
            Joined::Leader(guard) => {
                let response = match self.gate.admit() {
                    Admission::Shed => {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            message: SHED_MESSAGE.to_string(),
                        }
                        .encode()
                    }
                    Admission::Admitted(permit) => {
                        let response = self.session.handle(&request).encode();
                        drop(permit);
                        self.record_latency(started);
                        response
                    }
                };
                // Followers get the same bytes the leader computed — a
                // shed leader sheds its followers too (they arrived in
                // the same overloaded instant).
                guard.publish(response.clone());
                response
            }
            Joined::Follower(response) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.record_latency(started);
                response
            }
        };
        if response.starts_with(r#"{"reply":"error""#) {
            self.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ok.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    fn record_latency(&self, started: Instant) {
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.histogram.record_us(us);
    }

    /// One connection's life: read lines, answer each, until EOF, idle
    /// expiry, a dead peer, or server stop.
    fn serve_connection(&self, stream: NetStream) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
        let outcome = self.connection_loop(stream);
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
        // A vanished peer is normal (client ctrl-c'd); nothing to report.
        drop(outcome);
    }

    fn connection_loop(&self, stream: NetStream) -> std::io::Result<()> {
        stream.set_read_timeout(POLL_INTERVAL)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let mut last_activity = Instant::now();
        loop {
            if self.config.stop.load(Ordering::SeqCst) {
                return Ok(()); // draining: finish current request, close
            }
            let before = line.len();
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // EOF: client closed cleanly
                Ok(_) => {
                    last_activity = Instant::now();
                    if !line.trim().is_empty() {
                        let response = self.answer(&line);
                        writer.write_all(response.as_bytes())?;
                        writer.write_all(b"\n")?;
                        writer.flush()?;
                    }
                    line.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // Poll tick. `read_line` may have consumed a partial
                    // line into the buffer before timing out — keep it;
                    // the next pass appends the rest.
                    if line.len() > before {
                        last_activity = Instant::now();
                    }
                    if let Some(limit) = self.config.idle_timeout {
                        if last_activity.elapsed() >= limit {
                            return Ok(()); // idle: reclaim the thread
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Runs the server until the stop flag is set (SIGINT in the CLI, or an
/// accepted `shutdown` request), then drains open connections and
/// reports what it served.
///
/// # Errors
///
/// Propagates listener configuration failures; per-connection I/O
/// failures only close that connection.
pub fn run(
    session: &Session,
    listener: &NetListener,
    config: &NetConfig,
) -> std::io::Result<NetSummary> {
    listener.set_nonblocking()?;
    let workers = if config.workers == 0 {
        bitfusion_sim::pool::default_workers()
    } else {
        config.workers
    };
    let state = ServerState {
        session,
        gate: Gate::new(workers, config.max_queue),
        coalescer: Coalescer::new(),
        histogram: LatencyHistogram::new(),
        config,
        connections_active: AtomicU64::new(0),
        connections_total: AtomicU64::new(0),
        received: AtomicU64::new(0),
        ok: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        coalesced: AtomicU64::new(0),
    };
    let state = &state;
    std::thread::scope(|scope| {
        while !config.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok(stream) => {
                    scope.spawn(move || state.serve_connection(stream));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    std::thread::sleep(ACCEPT_INTERVAL);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
        // Scope exit joins every connection thread: the drain.
    })?;
    Ok(NetSummary {
        connections: state.connections_total.load(Ordering::Relaxed),
        responses: state
            .ok
            .load(Ordering::Relaxed)
            .saturating_add(state.errors.load(Ordering::Relaxed)),
        errors: state.errors.load(Ordering::Relaxed),
        coalesced: state.coalesced.load(Ordering::Relaxed),
    })
}
