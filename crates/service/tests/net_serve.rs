//! Network-server integration tests over real sockets: byte-determinism
//! across concurrent clients, request coalescing (K identical in-flight
//! requests cost one evaluation, proven via cache counters), load
//! shedding's pinned error shape, idle-connection reaping, and
//! shutdown drain.
//!
//! Synchronization discipline: tests never sleep-and-hope. They poll the
//! live `stats` endpoint (which bypasses admission, so it answers even
//! with the gate saturated) until the server observably reaches the
//! state the scenario needs — in-flight count, queue depth, received
//! count — then proceed.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::thread;
use std::time::{Duration, Instant};

use bitfusion_service::net::{self, NetConfig, NetListener, SHED_MESSAGE};
use bitfusion_service::protocol::{Request, StatsReply};
use bitfusion_service::serve::clamp_nested_workers;
use bitfusion_service::{Response, Session};

/// A slow occupant request (~hundreds of ms even in debug builds): a
/// 54-point event-backend DSE over the two deepest zoo networks.
const SLOW_DSE: &str = r#"{"cmd":"dse","rows":[8,16,32],"cols":[8,16,32],"bandwidth":[64,128,256],"batches":[4,16],"networks":["resnet-18","vgg-7"],"workers":1,"backend":"event"}"#;

/// A second, byte-distinct slow request for queue-occupancy scenarios.
const SLOW_DSE_B: &str = r#"{"cmd":"dse","rows":[8,16,32],"cols":[8,16,32],"bandwidth":[64,128,256],"networks":["resnet-18"],"workers":1,"backend":"event"}"#;

/// The identical request the coalescing test fans out K times.
const COALESCE_DSE: &str = r#"{"cmd":"dse","rows":[16,32],"cols":[16,32],"bandwidth":[64,128],"networks":["vgg-7"],"workers":1,"backend":"event"}"#;

fn bind_tcp() -> (NetListener, SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    (NetListener::Tcp(listener), addr)
}

/// One round-trip on a fresh connection.
fn exchange(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    assert!(reply.ends_with('\n'), "framed reply, got {reply:?}");
    reply.trim_end().to_string()
}

fn stats(addr: SocketAddr) -> StatsReply {
    match Response::parse(&exchange(addr, r#"{"cmd":"stats"}"#)).expect("stats parses") {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// Polls until `pred` holds (30 s cap — generous because debug-build
/// evaluations are slow, but every wait is event-driven, not timed).
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(5));
    }
}

/// What a fresh one-shot session answers for `line` — the byte-identity
/// reference (the nested-dse clamp applied, as every serve flavour does;
/// results are worker-count-independent so the clamp never changes
/// bytes).
fn one_shot(line: &str) -> String {
    let mut request = Request::parse(line).expect("test request parses");
    clamp_nested_workers(&mut request);
    Session::new().handle(&request).encode()
}

#[test]
fn concurrent_clients_get_one_shot_bytes() {
    let session = Session::new();
    let (listener, addr) = bind_tcp();
    let config = NetConfig {
        workers: 4,
        ..NetConfig::default()
    };
    let script: Vec<&str> = vec![
        r#"{"cmd":"list"}"#,
        r#"{"cmd":"report","benchmark":"rnn","batch":1}"#,
        r#"{"cmd":"report","benchmark":"lstm","batch":16,"backend":"event"}"#,
        r#"{"cmd":"sweep","benchmark":"rnn","axis":"bandwidth"}"#,
        r#"{"cmd":"quantize","benchmark":"svhn"}"#,
        r#"{"cmd":"asm","benchmark":"rnn","batch":1}"#,
    ];
    let (session, config, script) = (&session, &config, &script);
    let responses: Vec<Vec<String>> = thread::scope(|scope| {
        let server = scope.spawn(move || net::run(session, &listener, config));
        // 6 clients, each sending the whole script on one connection but
        // starting from a different offset, so the interleaving across
        // connections differs every run.
        let clients: Vec<_> = (0..6)
            .map(|offset| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut got = Vec::new();
                    for i in 0..script.len() {
                        let line = script[(offset + i) % script.len()];
                        stream.write_all(line.as_bytes()).unwrap();
                        stream.write_all(b"\n").unwrap();
                        stream.flush().unwrap();
                        let mut reply = String::new();
                        reader.read_line(&mut reply).unwrap();
                        got.push((line, reply.trim_end().to_string()));
                    }
                    got
                })
            })
            .collect();
        let per_client: Vec<Vec<(&str, String)>> =
            clients.into_iter().map(|c| c.join().unwrap()).collect();
        config.stop.store(true, Ordering::SeqCst);
        let summary = server.join().unwrap().expect("server runs");
        assert_eq!(summary.responses, 36, "6 clients x 6 requests");
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.connections, 6);
        per_client
            .into_iter()
            .map(|got| {
                got.into_iter()
                    .map(|(line, reply)| {
                        // Byte-identical to a fresh one-shot session, no
                        // matter the interleaving or cache warmth.
                        assert_eq!(reply, one_shot(line), "request {line}");
                        reply
                    })
                    .collect()
            })
            .collect()
    });
    // And identical across clients, naturally.
    for r in &responses[1..] {
        assert_eq!(r.len(), responses[0].len());
    }
}

#[test]
fn identical_inflight_requests_evaluate_once() {
    const FOLLOWERS: usize = 3; // K = FOLLOWERS + 1 identical requests
    let session = Session::new();
    let (listener, addr) = bind_tcp();
    let config = NetConfig {
        workers: 1, // one evaluation slot: the occupant holds it
        max_queue: 8,
        ..NetConfig::default()
    };
    let (session, config) = (&session, &config);
    thread::scope(|scope| {
        let server = scope.spawn(move || net::run(session, &listener, config));
        // Occupy the only slot with a slow, byte-distinct request.
        let occupant = scope.spawn(move || exchange(addr, SLOW_DSE));
        wait_until("occupant in flight", || stats(addr).in_flight == 1);
        // Fan out K identical requests. The first to arrive leads (and
        // queues behind the occupant); the rest follow its flight.
        let identical: Vec<_> = (0..=FOLLOWERS)
            .map(|_| scope.spawn(move || exchange(addr, COALESCE_DSE)))
            .collect();
        // All K received and the leader queued — the followers are
        // waiting on the flight, not occupying queue slots.
        wait_until("leader queued, followers coalesced", || {
            let s = stats(addr);
            s.received == 1 + (FOLLOWERS as u64 + 1) && s.queue_depth == 1
        });
        let expected = one_shot(COALESCE_DSE);
        for client in identical {
            assert_eq!(client.join().unwrap(), expected);
        }
        assert_eq!(occupant.join().unwrap(), one_shot(SLOW_DSE));
        let s = stats(addr);
        assert_eq!(s.coalesced, FOLLOWERS as u64, "K-1 requests coalesced");
        assert_eq!(s.received, 1 + FOLLOWERS as u64 + 1);
        assert_eq!(s.errors, 0);
        config.stop.store(true, Ordering::SeqCst);
        let summary = server.join().unwrap().expect("server runs");
        assert_eq!(summary.coalesced, FOLLOWERS as u64);
    });
    // The spec-level proof that K identical requests cost ONE evaluation:
    // the shared caches saw exactly the lookups of evaluating the
    // occupant once and the coalesced request once. A duplicate
    // evaluation would add hits (warm re-run) and break equality.
    let reference = Session::new();
    for line in [SLOW_DSE, COALESCE_DSE] {
        let mut request = Request::parse(line).unwrap();
        clamp_nested_workers(&mut request);
        reference.handle(&request);
    }
    assert_eq!(session.cache_stats(), reference.cache_stats());
    assert_eq!(session.layer_cache_stats(), reference.layer_cache_stats());
}

#[test]
fn overload_sheds_with_a_parseable_error() {
    let session = Session::new();
    let (listener, addr) = bind_tcp();
    let config = NetConfig {
        workers: 1,
        max_queue: 1, // one evaluating + one waiting; the third sheds
        ..NetConfig::default()
    };
    let (session, config) = (&session, &config);
    thread::scope(|scope| {
        let server = scope.spawn(move || net::run(session, &listener, config));
        let occupant = scope.spawn(move || exchange(addr, SLOW_DSE));
        wait_until("occupant in flight", || stats(addr).in_flight == 1);
        let queued = scope.spawn(move || exchange(addr, SLOW_DSE_B));
        wait_until("queue full", || stats(addr).queue_depth == 1);
        // The gate is saturated: slot + queue taken. A third, distinct
        // request must be answered immediately with the pinned,
        // well-formed error — not a dropped connection, not a hang.
        let shed_reply = exchange(addr, r#"{"cmd":"report","benchmark":"rnn","batch":1}"#);
        assert_eq!(
            shed_reply,
            format!(r#"{{"reply":"error","message":"{SHED_MESSAGE}"}}"#)
        );
        match Response::parse(&shed_reply).expect("shed reply parses") {
            Response::Error { message } => assert_eq!(message, SHED_MESSAGE),
            other => panic!("expected an error reply, got {other:?}"),
        }
        let s = stats(addr);
        assert_eq!(s.shed, 1);
        assert_eq!(s.errors, 1, "the shed request is the only error");
        assert_eq!(s.queue_capacity, 1);
        assert_eq!(s.workers, 1);
        // The occupant and the queued request still complete correctly.
        assert_eq!(occupant.join().unwrap(), one_shot(SLOW_DSE));
        assert_eq!(queued.join().unwrap(), one_shot(SLOW_DSE_B));
        // Latency percentiles cover the completed (non-shed) requests.
        let s = stats(addr);
        assert_eq!(s.latency.count, 2);
        assert!(s.latency.p50_us > 0);
        assert!(s.latency.p50_us <= s.latency.p90_us);
        assert!(s.latency.p90_us <= s.latency.p99_us);
        config.stop.store(true, Ordering::SeqCst);
        let summary = server.join().unwrap().expect("server runs");
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.responses, 3);
    });
}

#[test]
fn idle_connections_are_reaped_but_the_server_lives_on() {
    let session = Session::new();
    let (listener, addr) = bind_tcp();
    let config = NetConfig {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(250)),
        ..NetConfig::default()
    };
    let (session, config) = (&session, &config);
    thread::scope(|scope| {
        let server = scope.spawn(move || net::run(session, &listener, config));
        // A client that connects and never speaks: the server must close
        // it (read returns EOF) rather than pin the thread forever.
        let idle = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(idle);
        let mut buf = String::new();
        let n = reader.read_line(&mut buf).expect("clean close, not reset");
        assert_eq!(n, 0, "idle connection reaped with EOF");
        // Only the polling stats connection itself remains active.
        wait_until("idle connection retired", || {
            stats(addr).connections_active == 1
        });
        // An active client on the same server is unaffected.
        let reply = exchange(addr, r#"{"cmd":"list"}"#);
        assert!(reply.starts_with(r#"{"reply":"list""#));
        config.stop.store(true, Ordering::SeqCst);
        server.join().unwrap().expect("server runs");
    });
}

#[cfg(unix)]
#[test]
fn shutdown_request_drains_a_unix_server() {
    let dir = std::env::temp_dir().join(format!("bitfusion-net-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.sock");
    let path_str = path.to_str().unwrap().to_string();
    let _ = std::fs::remove_file(&path);
    let session = Session::new();
    let listener = NetListener::bind_unix(&path_str).expect("bind unix socket");
    let config = NetConfig {
        workers: 2,
        allow_shutdown: true,
        ..NetConfig::default()
    };
    let unix_exchange = |line: &str| -> String {
        let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };
    let (session, config) = (&session, &config);
    thread::scope(|scope| {
        let server = scope.spawn(move || net::run(session, &listener, config));
        let reply = unix_exchange(r#"{"cmd":"report","benchmark":"rnn","batch":1}"#);
        assert_eq!(reply, one_shot(r#"{"cmd":"report","benchmark":"rnn","batch":1}"#));
        // The admin request: acknowledged, then the server drains and
        // `run` returns without anyone touching the stop flag.
        assert_eq!(unix_exchange(r#"{"cmd":"shutdown"}"#), r#"{"reply":"shutdown"}"#);
        let summary = server.join().unwrap().expect("server runs");
        assert_eq!(summary.responses, 1, "shutdown/stats are not workload");
        assert_eq!(summary.errors, 0);
    });
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// One keep-alive connection pipelining `script` in lockstep — exactly
/// what `bitfusion-cli client --keep-alive` does.
fn pipeline(addr: SocketAddr, script: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    script
        .iter()
        .map(|line| {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            stream.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        })
        .collect()
}

#[test]
fn keep_alive_pipelining_matches_one_shot_bytes() {
    let session = Session::new();
    let (listener, addr) = bind_tcp();
    let config = NetConfig {
        workers: 2,
        ..NetConfig::default()
    };
    let script = [
        r#"{"cmd":"list"}"#,
        r#"{"cmd":"report","benchmark":"rnn","batch":1}"#,
        r#"{"cmd":"quantize","benchmark":"svhn"}"#,
        r#"{"cmd":"report","benchmark":"rnn","batch":1}"#,
    ];
    let (session, config) = (&session, &config);
    thread::scope(|scope| {
        let server = scope.spawn(move || net::run(session, &listener, config));
        let piped = pipeline(addr, &script);
        for (line, reply) in script.iter().zip(&piped) {
            // Same bytes as a fresh one-shot connection per request...
            assert_eq!(*reply, exchange(addr, line), "request {line}");
            // ...and as a fresh one-shot session.
            assert_eq!(*reply, one_shot(line), "request {line}");
        }
        config.stop.store(true, Ordering::SeqCst);
        let summary = server.join().unwrap().expect("server runs");
        // 4 pipelined + 4 one-shot verification requests.
        assert_eq!(summary.responses, 8);
        assert_eq!(summary.connections, 5, "one keep-alive + 4 one-shot");
    });
}

#[test]
fn warm_cache_dir_restart_serves_identical_bytes_from_disk() {
    let dir = std::env::temp_dir().join(format!(
        "bitfusion-net-disk-test-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let script = [
        r#"{"cmd":"report","benchmark":"rnn","batch":4,"backend":"event"}"#,
        r#"{"cmd":"sweep","benchmark":"lstm","axis":"bandwidth"}"#,
    ];
    let run_server = |expect_disk_hits: bool| -> Vec<String> {
        let session = Session::new().with_cache_dir(&dir).expect("open store");
        let (listener, addr) = bind_tcp();
        let config = NetConfig {
            workers: 2,
            ..NetConfig::default()
        };
        let (session, config) = (&session, &config);
        thread::scope(|scope| {
            let server = scope.spawn(move || net::run(session, &listener, config));
            let replies = pipeline(addr, &script);
            let disk = stats(addr).disk.expect("--cache-dir servers report disk");
            if expect_disk_hits {
                assert!(disk.plan_hits > 0, "{disk:?}");
                assert!(disk.layer_hits > 0, "{disk:?}");
            } else {
                assert_eq!(disk.plan_hits, 0, "{disk:?}");
                assert!(disk.writes > 0, "{disk:?}");
            }
            assert_eq!(disk.corrupt, 0, "{disk:?}");
            config.stop.store(true, Ordering::SeqCst);
            server.join().unwrap().expect("server runs");
            replies
        })
    };
    let cold = run_server(false);
    // The restarted server's memory tiers are empty; the disk tier warms
    // them, and the response bytes cannot tell which tier answered.
    let warm = run_server(true);
    assert_eq!(cold, warm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_shutdown_is_refused() {
    let session = Session::new();
    let (listener, addr) = bind_tcp();
    let config = NetConfig::default(); // allow_shutdown: false
    let (session, config) = (&session, &config);
    thread::scope(|scope| {
        let server = scope.spawn(move || net::run(session, &listener, config));
        let reply = exchange(addr, r#"{"cmd":"shutdown"}"#);
        match Response::parse(&reply).expect("refusal parses") {
            Response::Error { message } => {
                assert!(message.contains("unix"), "{message}");
            }
            other => panic!("expected an error reply, got {other:?}"),
        }
        // Still serving.
        assert!(exchange(addr, r#"{"cmd":"list"}"#).starts_with(r#"{"reply":"list""#));
        config.stop.store(true, Ordering::SeqCst);
        server.join().unwrap().expect("server runs");
    });
}
