//! Protocol round-trip property tests: for every `Request` and `Response`
//! variant, `encode → parse` recovers the value exactly and
//! `encode → parse → encode` is a fixed point on the wire bytes — the
//! property the serve loop's byte-identity contract stands on.

use bitfusion_service::protocol::{
    ArchInfo, ArchPreset, AsmBlock, AsmReply, BackendChoice, BaselineComparison, BenchmarkInfo,
    CompareReply, DseParams, DseReply, EnergyInfo, FrontierPoint, InfeasibleInfo, LayerInfo,
    ReportReply, Request, Response, StallInfo, SweepAxis, SweepPointInfo, SweepReply,
};
use proptest::prelude::*;

/// Names with every class of character the encoder must escape.
fn arb_name() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec![
            "plain",
            "with \"quotes\"",
            "line\nbreak\ttab",
            "ünïcödé 😀",
            "back\\slash",
            "ctrl\u{1}char",
            "",
        ]),
        0u32..1000,
    )
        .prop_map(|(base, n)| format!("{base}-{n}"))
}

/// Finite floats across magnitudes, including negatives, zero, and values
/// that encode as integer literals.
fn arb_f64() -> impl Strategy<Value = f64> {
    (any::<i32>(), prop::sample::select(vec![1e-9, 1e-3, 1.0, 1e3, 1e12]))
        .prop_map(|(m, scale)| m as f64 * scale)
}

fn arb_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..1000,
        (1u64 << 40)..(1u64 << 41), // beyond f64-exact-u32 territory
        prop::sample::select(vec![0u64, 1, u64::from(u32::MAX)]),
    ]
}

fn arb_backend() -> impl Strategy<Value = BackendChoice> {
    prop::sample::select(vec![BackendChoice::Analytic, BackendChoice::Event])
}

fn arb_opt_backend() -> impl Strategy<Value = Option<BackendChoice>> {
    prop::option::of(arb_backend())
}

fn arb_axis() -> impl Strategy<Value = SweepAxis> {
    prop::sample::select(vec![SweepAxis::Batch, SweepAxis::Bandwidth])
}

fn arb_arch_preset() -> impl Strategy<Value = ArchPreset> {
    prop::sample::select(vec![
        ArchPreset::Isca45nm,
        ArchPreset::Gpu16nm,
        ArchPreset::StripesMatched,
    ])
}

fn arb_request() -> impl Strategy<Value = Request> {
    let report = (
        arb_name(),
        arb_u64(),
        prop::option::of(1u32..4096),
        arb_arch_preset(),
        arb_opt_backend(),
    )
        .prop_map(|(benchmark, batch, bandwidth, arch, backend)| Request::Report {
            benchmark,
            batch,
            bandwidth,
            arch,
            backend,
        });
    let compare = (arb_name(), arb_u64(), arb_opt_backend()).prop_map(
        |(benchmark, batch, backend)| Request::Compare {
            benchmark,
            batch,
            backend,
        },
    );
    let asm = (
        arb_name(),
        arb_u64(),
        arb_arch_preset(),
        prop::option::of(arb_name()),
    )
        .prop_map(|(benchmark, batch, arch, layer)| Request::Asm {
            benchmark,
            batch,
            arch,
            layer,
        });
    let sweep = (arb_name(), arb_axis(), arb_opt_backend()).prop_map(
        |(benchmark, axis, backend)| Request::Sweep {
            benchmark,
            axis,
            backend,
        },
    );
    let dse = (
        (
            prop::collection::vec(1u64..128, 1..4),
            prop::collection::vec(1u64..128, 1..4),
            prop::collection::vec(1u64..512, 1..3),
            prop::collection::vec(1u64..512, 1..3),
            prop::collection::vec(1u64..512, 1..3),
            prop::collection::vec(1u64..1024, 1..4),
            prop::collection::vec(1u64..256, 1..3),
        ),
        prop::option::of(prop::collection::vec(arb_name(), 1..4)),
        0u64..16,
        arb_opt_backend(),
    )
        .prop_map(
            |((rows, cols, ibuf_kb, wbuf_kb, obuf_kb, bandwidth, batches), networks, workers, backend)| {
                Request::Dse(DseParams {
                    rows,
                    cols,
                    ibuf_kb,
                    wbuf_kb,
                    obuf_kb,
                    bandwidth,
                    batches,
                    networks,
                    workers,
                    backend,
                })
            },
        );
    prop_oneof![
        prop::sample::select(vec![Request::List]),
        report,
        compare,
        asm,
        sweep,
        dse,
    ]
}

fn arb_arch_info() -> impl Strategy<Value = ArchInfo> {
    (
        arb_name(),
        1u64..256,
        1u64..256,
        1u64..1024,
        1u64..1024,
        1u64..1024,
        1u64..4096,
        1u64..4096,
    )
        .prop_map(
            |(name, rows, cols, ibuf_kb, wbuf_kb, obuf_kb, bandwidth_bits_per_cycle, freq_mhz)| {
                ArchInfo {
                    name,
                    rows,
                    cols,
                    ibuf_kb,
                    wbuf_kb,
                    obuf_kb,
                    bandwidth_bits_per_cycle,
                    freq_mhz,
                }
            },
        )
}

fn arb_energy() -> impl Strategy<Value = EnergyInfo> {
    (arb_f64(), arb_f64(), arb_f64(), arb_f64()).prop_map(
        |(compute_pj, buffer_pj, rf_pj, dram_pj)| EnergyInfo {
            compute_pj,
            buffer_pj,
            rf_pj,
            dram_pj,
        },
    )
}

fn arb_stalls() -> impl Strategy<Value = StallInfo> {
    (arb_u64(), arb_u64(), arb_u64()).prop_map(
        |(bandwidth_starved, compute_starved, fill_drain)| StallInfo {
            bandwidth_starved,
            compute_starved,
            fill_drain,
        },
    )
}

fn arb_layer() -> impl Strategy<Value = LayerInfo> {
    (
        arb_name(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
        prop::sample::select(vec![true, false]),
    )
        .prop_map(
            |(name, cycles, compute_cycles, dma_cycles, macs, dram_bits, bandwidth_bound)| {
                LayerInfo {
                    name,
                    cycles,
                    compute_cycles,
                    dma_cycles,
                    macs,
                    dram_bits,
                    bandwidth_bound,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    let benchmarks = (
        prop::collection::vec(
            (arb_name(), arb_u64(), arb_u64(), arb_u64()).prop_map(
                |(name, layers, macs, weight_bytes)| BenchmarkInfo {
                    name,
                    layers,
                    macs,
                    weight_bytes,
                },
            ),
            0..4,
        ),
        prop::collection::vec(arb_name(), 0..4),
    )
        .prop_map(|(benchmarks, architectures)| Response::Benchmarks {
            benchmarks,
            architectures,
        });
    let report = (
        (arb_name(), arb_u64(), arb_backend(), arb_arch_info()),
        (arb_u64(), arb_u64(), arb_u64()),
        (arb_f64(), arb_f64()),
        arb_energy(),
        arb_stalls(),
        prop::collection::vec(arb_layer(), 0..4),
    )
        .prop_map(
            |(
                (benchmark, batch, backend, arch),
                (cycles, macs, dram_bits),
                (latency_ms_per_input, macs_per_cycle),
                energy_per_input,
                stalls,
                layers,
            )| {
                Response::Report(ReportReply {
                    benchmark,
                    batch,
                    backend,
                    arch,
                    cycles,
                    macs,
                    dram_bits,
                    latency_ms_per_input,
                    macs_per_cycle,
                    energy_per_input,
                    stalls,
                    layers,
                })
            },
        );
    let compare = (
        (arb_name(), arb_u64(), arb_backend()),
        arb_f64(),
        arb_energy(),
        prop::collection::vec(
            (arb_name(), arb_f64(), prop::option::of(arb_f64())).prop_map(
                |(name, speedup, energy_ratio)| BaselineComparison {
                    name,
                    speedup,
                    energy_ratio,
                },
            ),
            0..4,
        ),
    )
        .prop_map(
            |((benchmark, batch, backend), latency_ms_per_input, energy_per_input, baselines)| {
                Response::Compare(CompareReply {
                    benchmark,
                    batch,
                    backend,
                    latency_ms_per_input,
                    energy_per_input,
                    baselines,
                })
            },
        );
    let asm = (
        arb_name(),
        arb_u64(),
        prop::collection::vec(
            (arb_name(), arb_name()).prop_map(|(layer, text)| AsmBlock { layer, text }),
            0..4,
        ),
    )
        .prop_map(|(benchmark, batch, blocks)| {
            Response::Asm(AsmReply {
                benchmark,
                batch,
                blocks,
            })
        });
    let sweep = (
        (arb_name(), arb_axis(), arb_backend(), arb_u64()),
        prop::collection::vec(
            (arb_u64(), arb_u64(), arb_f64(), arb_f64()).prop_map(
                |(value, cycles, cycles_per_input, speedup)| SweepPointInfo {
                    value,
                    cycles,
                    cycles_per_input,
                    speedup,
                },
            ),
            0..6,
        ),
    )
        .prop_map(|((benchmark, axis, backend, baseline), points)| {
            Response::Sweep(SweepReply {
                benchmark,
                axis,
                backend,
                baseline,
                points,
            })
        });
    let dse = (
        (arb_backend(), arb_u64(), arb_u64(), arb_u64()),
        (arb_u64(), arb_u64()),
        prop::collection::vec(
            (arb_name(), arb_name(), arb_name()).prop_map(|(model, arch, error)| {
                InfeasibleInfo { model, arch, error }
            }),
            0..3,
        ),
        prop::collection::vec(
            (
                arb_arch_info(),
                arb_u64(),
                arb_f64(),
                arb_f64(),
                arb_u64(),
                arb_u64(),
            )
                .prop_map(
                    |(arch, cycles, energy_pj, area_mm2, bandwidth_starved, compute_starved)| {
                        FrontierPoint {
                            arch,
                            cycles,
                            energy_pj,
                            area_mm2,
                            bandwidth_starved,
                            compute_starved,
                        }
                    },
                ),
            0..3,
        ),
    )
        .prop_map(
            |(
                (backend, grid_points, points, infeasible),
                (compile_hits, compile_misses),
                infeasible_sample,
                frontier,
            )| {
                Response::Dse(DseReply {
                    backend,
                    grid_points,
                    points,
                    infeasible,
                    infeasible_sample,
                    compile_hits,
                    compile_misses,
                    frontier,
                })
            },
        );
    let error = arb_name().prop_map(|message| Response::Error { message });
    prop_oneof![benchmarks, report, compare, asm, sweep, dse, error]
}

proptest! {
    #[test]
    fn request_encode_parse_encode_is_a_fixed_point(req in arb_request()) {
        let wire = req.encode();
        let back = Request::parse(&wire).expect("own encoding parses");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.encode(), wire);
    }

    #[test]
    fn response_encode_parse_encode_is_a_fixed_point(resp in arb_response()) {
        let wire = resp.encode();
        let back = Response::parse(&wire).expect("own encoding parses");
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.encode(), wire.clone());
        // The wire form is one line: serve's framing can never split it.
        prop_assert!(!wire.contains('\n'), "{}", wire);
    }
}

#[test]
fn every_request_variant_is_exercised() {
    // The strategies above must cover all six commands; pin the
    // discriminants so a new variant cannot silently skip the round-trip.
    let mut seen = std::collections::BTreeSet::new();
    for req in [
        Request::List,
        Request::Report {
            benchmark: "x".into(),
            batch: 1,
            bandwidth: None,
            arch: ArchPreset::Isca45nm,
            backend: None,
        },
        Request::Compare {
            benchmark: "x".into(),
            batch: 1,
            backend: None,
        },
        Request::Asm {
            benchmark: "x".into(),
            batch: 1,
            arch: ArchPreset::Isca45nm,
            layer: None,
        },
        Request::Sweep {
            benchmark: "x".into(),
            axis: SweepAxis::Batch,
            backend: None,
        },
        Request::Dse(DseParams::default()),
    ] {
        seen.insert(req.cmd());
        let wire = req.encode();
        assert_eq!(Request::parse(&wire).unwrap(), req);
    }
    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec!["asm", "compare", "dse", "list", "report", "sweep"]
    );
}
