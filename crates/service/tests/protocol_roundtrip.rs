//! Protocol round-trip property tests: for every `Request` and `Response`
//! variant, `encode → parse` recovers the value exactly and
//! `encode → parse → encode` is a fixed point on the wire bytes — the
//! property the serve loop's byte-identity contract stands on.

use bitfusion_core::bitwidth::PairPrecision;
use bitfusion_core::postproc::PoolOp;
use bitfusion_dnn::layer::{
    ActivationLayer, CellKind, Conv2d, Dense, DepthwiseConv2d, Eltwise, Layer, Pool2d, Recurrent,
};
use bitfusion_dnn::model::{Model, NamedLayer};
use bitfusion_dnn::quantspec::{QuantSpec, QUANT_KINDS};
use bitfusion_dnn::schema::{export_model, parse_model};
use bitfusion_service::json::parse as parse_json;
use bitfusion_service::protocol::{
    quant_spec_from_json, quant_spec_to_json, ArchInfo, ArchPreset, AsmBlock, AsmReply,
    BackendChoice, BaselineComparison, BenchmarkInfo, CacheTierInfo, CompareReply, DiskStoreInfo,
    DseParams, DseReply, EnergyInfo, FrontierPoint, InfeasibleInfo, LatencyInfo, LayerInfo,
    ModelSource,
    QuantLayerInfo, QuantSpeedupInfo, QuantizeReply, ReportReply, Request, Response, StallInfo,
    StatsReply, SweepAxis, SweepPointInfo, SweepReply,
};
use proptest::prelude::*;

/// Names with every class of character the encoder must escape.
fn arb_name() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec![
            "plain",
            "with \"quotes\"",
            "line\nbreak\ttab",
            "ünïcödé 😀",
            "back\\slash",
            "ctrl\u{1}char",
            "",
        ]),
        0u32..1000,
    )
        .prop_map(|(base, n)| format!("{base}-{n}"))
}

/// Finite floats across magnitudes, including negatives, zero, and values
/// that encode as integer literals.
fn arb_f64() -> impl Strategy<Value = f64> {
    (any::<i32>(), prop::sample::select(vec![1e-9, 1e-3, 1.0, 1e3, 1e12]))
        .prop_map(|(m, scale)| m as f64 * scale)
}

fn arb_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..1000,
        (1u64 << 40)..(1u64 << 41), // beyond f64-exact-u32 territory
        prop::sample::select(vec![0u64, 1, u64::from(u32::MAX)]),
    ]
}

/// A supported (input, weight) pair in the `from_bits` convention — the
/// only kind a compact or JSON spec can spell.
fn arb_pair() -> impl Strategy<Value = PairPrecision> {
    (
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
    )
        .prop_map(|(i, w)| PairPrecision::from_bits(i, w).expect("supported widths"))
}

/// Structurally arbitrary quant specs: optional default, kind overrides,
/// layer overrides (names drawn from zoo-style identifiers).
fn arb_quant_spec() -> impl Strategy<Value = QuantSpec> {
    (
        prop::option::of(arb_pair()),
        prop::collection::vec(
            (prop::sample::select(QUANT_KINDS.to_vec()), arb_pair()),
            0..3,
        ),
        prop::collection::vec(
            (
                prop::sample::select(vec!["conv1", "fc8", "lstm1", "rnn2", "l4b2c2"]),
                arb_pair(),
            ),
            0..3,
        ),
    )
        .prop_map(|(default, kinds, layers)| QuantSpec {
            default,
            kinds: kinds.into_iter().map(|(k, p)| (k.to_string(), p)).collect(),
            layers: layers.into_iter().map(|(l, p)| (l.to_string(), p)).collect(),
        })
}

/// Quant override strings as the protocol carries them (canonical
/// spellings).
fn arb_quant_string() -> impl Strategy<Value = String> {
    arb_quant_spec().prop_map(|s| s.to_string())
}

fn arb_opt_quant() -> impl Strategy<Value = Option<String>> {
    prop::option::of(arb_quant_string())
}

fn arb_backend() -> impl Strategy<Value = BackendChoice> {
    prop::sample::select(vec![BackendChoice::Analytic, BackendChoice::Event])
}

fn arb_opt_backend() -> impl Strategy<Value = Option<BackendChoice>> {
    prop::option::of(arb_backend())
}

fn arb_axis() -> impl Strategy<Value = SweepAxis> {
    prop::sample::select(vec![SweepAxis::Batch, SweepAxis::Bandwidth])
}

fn arb_arch_preset() -> impl Strategy<Value = ArchPreset> {
    prop::sample::select(vec![
        ArchPreset::Isca45nm,
        ArchPreset::Gpu16nm,
        ArchPreset::StripesMatched,
    ])
}

/// Arbitrary valid layers covering every `bitfusion-model/1` kind, with
/// geometry constrained so sliding windows always fit their padded input
/// (anything looser is a schema parse error, not a round-trip case).
fn arb_model_layer() -> impl Strategy<Value = Layer> {
    let geom = || (4usize..32, 4usize..32, 1usize..4, 1usize..3, 0usize..2);
    let conv = (geom(), 1usize..4, 1usize..8, 1usize..8, arb_pair()).prop_map(
        |((h, w, k, s, p), groups, in_c, out_c, precision)| {
            Layer::Conv2d(Conv2d {
                in_channels: groups * in_c,
                out_channels: groups * out_c,
                kernel: (k, k),
                stride: (s, s),
                padding: (p, p),
                input_hw: (h, w),
                groups,
                precision,
            })
        },
    );
    let dwconv = (geom(), 1usize..32, arb_pair()).prop_map(|((h, w, k, s, p), channels, precision)| {
        Layer::DepthwiseConv2d(DepthwiseConv2d {
            channels,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
            input_hw: (h, w),
            precision,
        })
    });
    let fc = (1usize..256, 1usize..256, arb_pair()).prop_map(|(i, o, precision)| {
        Layer::Dense(Dense {
            in_features: i,
            out_features: o,
            precision,
        })
    });
    let pool = (
        geom(),
        1usize..32,
        prop::sample::select(vec![PoolOp::Max, PoolOp::Average]),
    )
        .prop_map(|((h, w, k, s, p), channels, op)| {
            Layer::Pool2d(Pool2d {
                channels,
                input_hw: (h, w),
                window: (k, k),
                stride: (s, s),
                padding: (p, p),
                op,
            })
        });
    let recurrent = (
        prop::sample::select(vec![CellKind::Lstm, CellKind::Rnn]),
        1usize..256,
        1usize..256,
        arb_pair(),
    )
        .prop_map(|(cell, input_size, hidden_size, precision)| {
            Layer::Recurrent(Recurrent {
                cell,
                input_size,
                hidden_size,
                precision,
            })
        });
    let eltwise = (1usize..4096, any::<bool>())
        .prop_map(|(elements, is_add)| Layer::Eltwise(Eltwise { elements, is_add }));
    let act =
        (1usize..4096).prop_map(|elements| Layer::Activation(ActivationLayer { elements }));
    prop_oneof![conv, dwconv, fc, pool, recurrent, eltwise, act]
}

/// Arbitrary external models as the `"model"` wire field carries them.
fn arb_model() -> impl Strategy<Value = Model> {
    (arb_name(), prop::collection::vec(arb_model_layer(), 1..4)).prop_map(|(name, layers)| {
        Model {
            name,
            layers: layers
                .into_iter()
                .enumerate()
                .map(|(i, layer)| NamedLayer {
                    name: format!("l{i}"),
                    layer,
                })
                .collect(),
        }
    })
}

/// Either side of the `benchmark` XOR `model` wire convention.
fn arb_source() -> impl Strategy<Value = ModelSource> {
    prop_oneof![
        arb_name().prop_map(ModelSource::Zoo),
        arb_model().prop_map(ModelSource::External),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    let report = (
        arb_source(),
        arb_u64(),
        prop::option::of(1u32..4096),
        arb_arch_preset(),
        arb_opt_backend(),
        arb_opt_quant(),
    )
        .prop_map(|(model, batch, bandwidth, arch, backend, quant)| Request::Report {
            model,
            batch,
            bandwidth,
            arch,
            backend,
            quant,
        });
    let compare = (arb_source(), arb_u64(), arb_opt_backend(), arb_opt_quant()).prop_map(
        |(model, batch, backend, quant)| Request::Compare {
            model,
            batch,
            backend,
            quant,
        },
    );
    let asm = (
        arb_source(),
        arb_u64(),
        arb_arch_preset(),
        prop::option::of(arb_name()),
    )
        .prop_map(|(model, batch, arch, layer)| Request::Asm {
            model,
            batch,
            arch,
            layer,
        });
    let sweep = (arb_source(), arb_axis(), arb_opt_backend(), arb_opt_quant()).prop_map(
        |(model, axis, backend, quant)| Request::Sweep {
            model,
            axis,
            backend,
            quant,
        },
    );
    let dse = (
        (
            prop::collection::vec(1u64..128, 1..4),
            prop::collection::vec(1u64..128, 1..4),
            prop::collection::vec(1u64..512, 1..3),
            prop::collection::vec(1u64..512, 1..3),
            prop::collection::vec(1u64..512, 1..3),
            prop::collection::vec(1u64..1024, 1..4),
            prop::collection::vec(1u64..256, 1..3),
        ),
        prop::collection::vec(arb_quant_string(), 1..4),
        prop::option::of(prop::collection::vec(arb_name(), 1..4)),
        prop::collection::vec(arb_model(), 0..3),
        0u64..16,
        arb_opt_backend(),
        any::<bool>(),
    )
        .prop_map(
            |(
                (rows, cols, ibuf_kb, wbuf_kb, obuf_kb, bandwidth, batches),
                quants,
                networks,
                models,
                workers,
                backend,
                resume,
            )| {
                Request::Dse(DseParams {
                    rows,
                    cols,
                    ibuf_kb,
                    wbuf_kb,
                    obuf_kb,
                    bandwidth,
                    batches,
                    quants,
                    networks,
                    models,
                    workers,
                    backend,
                    resume,
                })
            },
        );
    let quantize = (arb_source(), arb_opt_quant())
        .prop_map(|(model, quant)| Request::Quantize { model, quant });
    prop_oneof![
        prop::sample::select(vec![Request::List, Request::Stats, Request::Shutdown]),
        report,
        compare,
        asm,
        sweep,
        dse,
        quantize,
    ]
}

fn arb_cache_tier() -> impl Strategy<Value = CacheTierInfo> {
    (arb_u64(), arb_u64(), arb_u64(), arb_u64(), arb_u64()).prop_map(
        |(hits, misses, evictions, len, capacity)| CacheTierInfo {
            hits,
            misses,
            evictions,
            len,
            capacity,
        },
    )
}

fn arb_disk_store() -> impl Strategy<Value = DiskStoreInfo> {
    (
        (arb_u64(), arb_u64(), arb_u64(), arb_u64()),
        (arb_u64(), arb_u64(), arb_u64(), arb_u64()),
    )
        .prop_map(
            |(
                (plan_hits, plan_misses, layer_hits, layer_misses),
                (point_hits, point_misses, writes, corrupt),
            )| DiskStoreInfo {
                plan_hits,
                plan_misses,
                layer_hits,
                layer_misses,
                point_hits,
                point_misses,
                writes,
                corrupt,
            },
        )
}

fn arb_arch_info() -> impl Strategy<Value = ArchInfo> {
    (
        arb_name(),
        1u64..256,
        1u64..256,
        1u64..1024,
        1u64..1024,
        1u64..1024,
        1u64..4096,
        1u64..4096,
    )
        .prop_map(
            |(name, rows, cols, ibuf_kb, wbuf_kb, obuf_kb, bandwidth_bits_per_cycle, freq_mhz)| {
                ArchInfo {
                    name,
                    rows,
                    cols,
                    ibuf_kb,
                    wbuf_kb,
                    obuf_kb,
                    bandwidth_bits_per_cycle,
                    freq_mhz,
                }
            },
        )
}

fn arb_energy() -> impl Strategy<Value = EnergyInfo> {
    (arb_f64(), arb_f64(), arb_f64(), arb_f64()).prop_map(
        |(compute_pj, buffer_pj, rf_pj, dram_pj)| EnergyInfo {
            compute_pj,
            buffer_pj,
            rf_pj,
            dram_pj,
        },
    )
}

fn arb_stalls() -> impl Strategy<Value = StallInfo> {
    (arb_u64(), arb_u64(), arb_u64()).prop_map(
        |(bandwidth_starved, compute_starved, fill_drain)| StallInfo {
            bandwidth_starved,
            compute_starved,
            fill_drain,
        },
    )
}

fn arb_layer() -> impl Strategy<Value = LayerInfo> {
    (
        arb_name(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
        prop::sample::select(vec![true, false]),
    )
        .prop_map(
            |(name, cycles, compute_cycles, dma_cycles, macs, dram_bits, bandwidth_bound)| {
                LayerInfo {
                    name,
                    cycles,
                    compute_cycles,
                    dma_cycles,
                    macs,
                    dram_bits,
                    bandwidth_bound,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    let benchmarks = (
        prop::collection::vec(
            (arb_name(), arb_u64(), arb_u64(), arb_u64()).prop_map(
                |(name, layers, macs, weight_bytes)| BenchmarkInfo {
                    name,
                    layers,
                    macs,
                    weight_bytes,
                },
            ),
            0..4,
        ),
        prop::collection::vec(arb_name(), 0..4),
    )
        .prop_map(|(benchmarks, architectures)| Response::Benchmarks {
            benchmarks,
            architectures,
        });
    let report = (
        (arb_name(), arb_u64(), arb_backend(), arb_opt_quant(), arb_arch_info()),
        (arb_u64(), arb_u64(), arb_u64()),
        (arb_f64(), arb_f64()),
        arb_energy(),
        arb_stalls(),
        (arb_u64(), arb_u64()),
        prop::collection::vec(arb_layer(), 0..4),
    )
        .prop_map(
            |(
                (benchmark, batch, backend, quant, arch),
                (cycles, macs, dram_bits),
                (latency_ms_per_input, macs_per_cycle),
                energy_per_input,
                stalls,
                (layer_hits, layer_misses),
                layers,
            )| {
                Response::Report(ReportReply {
                    benchmark,
                    batch,
                    backend,
                    quant,
                    arch,
                    cycles,
                    macs,
                    dram_bits,
                    latency_ms_per_input,
                    macs_per_cycle,
                    energy_per_input,
                    stalls,
                    layer_hits,
                    layer_misses,
                    layers,
                })
            },
        );
    let compare = (
        (arb_name(), arb_u64(), arb_backend(), arb_opt_quant()),
        arb_f64(),
        arb_energy(),
        prop::collection::vec(
            (arb_name(), arb_f64(), prop::option::of(arb_f64())).prop_map(
                |(name, speedup, energy_ratio)| BaselineComparison {
                    name,
                    speedup,
                    energy_ratio,
                },
            ),
            0..4,
        ),
    )
        .prop_map(
            |(
                (benchmark, batch, backend, quant),
                latency_ms_per_input,
                energy_per_input,
                baselines,
            )| {
                Response::Compare(CompareReply {
                    benchmark,
                    batch,
                    backend,
                    quant,
                    latency_ms_per_input,
                    energy_per_input,
                    baselines,
                })
            },
        );
    let asm = (
        arb_name(),
        arb_u64(),
        prop::collection::vec(
            (arb_name(), arb_name()).prop_map(|(layer, text)| AsmBlock { layer, text }),
            0..4,
        ),
    )
        .prop_map(|(benchmark, batch, blocks)| {
            Response::Asm(AsmReply {
                benchmark,
                batch,
                blocks,
            })
        });
    let sweep = (
        (arb_name(), arb_axis(), arb_backend(), arb_opt_quant(), arb_u64()),
        (arb_u64(), arb_u64()),
        prop::collection::vec(
            (arb_u64(), arb_u64(), arb_f64(), arb_f64()).prop_map(
                |(value, cycles, cycles_per_input, speedup)| SweepPointInfo {
                    value,
                    cycles,
                    cycles_per_input,
                    speedup,
                },
            ),
            0..6,
        ),
    )
        .prop_map(
            |((benchmark, axis, backend, quant, baseline), (layer_hits, layer_misses), points)| {
                Response::Sweep(SweepReply {
                    benchmark,
                    axis,
                    backend,
                    quant,
                    baseline,
                    layer_hits,
                    layer_misses,
                    points,
                })
            },
        );
    let dse = (
        (arb_backend(), arb_u64(), arb_u64(), arb_u64()),
        (
            prop::collection::vec(arb_quant_string(), 1..4),
            prop::option::of(arb_quant_string()),
            prop::collection::vec(
                (arb_name(), arb_quant_string(), arb_f64(), arb_f64()).prop_map(
                    |(model, quant, speedup, energy_ratio)| QuantSpeedupInfo {
                        model,
                        quant,
                        speedup,
                        energy_ratio,
                    },
                ),
                0..3,
            ),
        ),
        (arb_u64(), arb_u64(), arb_u64(), arb_u64()),
        prop::collection::vec(
            (arb_name(), arb_name(), arb_name()).prop_map(|(model, arch, error)| {
                InfeasibleInfo { model, arch, error }
            }),
            0..3,
        ),
        prop::collection::vec(
            (
                arb_arch_info(),
                arb_quant_string(),
                arb_u64(),
                arb_f64(),
                arb_f64(),
                arb_u64(),
                arb_u64(),
            )
                .prop_map(
                    |(
                        arch,
                        quant,
                        cycles,
                        energy_pj,
                        area_mm2,
                        bandwidth_starved,
                        compute_starved,
                    )| {
                        FrontierPoint {
                            arch,
                            quant,
                            cycles,
                            energy_pj,
                            area_mm2,
                            bandwidth_starved,
                            compute_starved,
                        }
                    },
                ),
            0..3,
        ),
    )
        .prop_map(
            |(
                (backend, grid_points, points, infeasible),
                (quants, speedup_baseline, quant_speedups),
                (compile_hits, compile_misses, layer_hits, layer_misses),
                infeasible_sample,
                frontier,
            )| {
                Response::Dse(DseReply {
                    backend,
                    quants,
                    speedup_baseline,
                    quant_speedups,
                    grid_points,
                    points,
                    infeasible,
                    infeasible_sample,
                    compile_hits,
                    compile_misses,
                    layer_hits,
                    layer_misses,
                    frontier,
                })
            },
        );
    let quantize = (
        (arb_name(), arb_quant_string()),
        (arb_u64(), arb_u64(), arb_f64()),
        prop::collection::vec(
            (
                arb_name(),
                prop::sample::select(QUANT_KINDS.to_vec()),
                prop::sample::select(vec![1u64, 2, 4, 8, 16]),
                prop::sample::select(vec![1u64, 2, 4, 8, 16]),
                arb_u64(),
            )
                .prop_map(|(name, kind, input_bits, weight_bits, macs)| QuantLayerInfo {
                    name,
                    kind: kind.to_string(),
                    input_bits,
                    weight_bits,
                    macs,
                }),
            0..4,
        ),
    )
        .prop_map(
            |((benchmark, quant), (total_macs, weight_bytes, share_le_4bit), layers)| {
                Response::Quantize(QuantizeReply {
                    benchmark,
                    quant,
                    total_macs,
                    weight_bytes,
                    share_le_4bit,
                    layers,
                })
            },
        );
    let error = arb_name().prop_map(|message| Response::Error { message });
    let stats = (
        (arb_u64(), arb_u64()),
        (arb_u64(), arb_u64(), arb_u64(), arb_u64(), arb_u64()),
        (arb_u64(), arb_u64(), arb_u64(), arb_u64()),
        (arb_cache_tier(), arb_cache_tier()),
        (arb_u64(), arb_u64(), arb_u64(), arb_u64(), arb_u64()),
        prop::option::of(arb_disk_store()),
    )
        .prop_map(
            |(
                (connections_active, connections_total),
                (received, ok, errors, shed, coalesced),
                (queue_depth, queue_capacity, in_flight, workers),
                (artifact_cache, layer_cache),
                (count, p50_us, p90_us, p99_us, max_us),
                disk,
            )| {
                Response::Stats(StatsReply {
                    connections_active,
                    connections_total,
                    received,
                    ok,
                    errors,
                    shed,
                    coalesced,
                    queue_depth,
                    queue_capacity,
                    in_flight,
                    workers,
                    artifact_cache,
                    layer_cache,
                    latency: LatencyInfo {
                        count,
                        p50_us,
                        p90_us,
                        p99_us,
                        max_us,
                    },
                    disk,
                })
            },
        );
    prop_oneof![
        benchmarks,
        report,
        compare,
        asm,
        sweep,
        dse,
        quantize,
        stats,
        prop::sample::select(vec![Response::Shutdown]),
        error,
    ]
}

proptest! {
    #[test]
    fn request_encode_parse_encode_is_a_fixed_point(req in arb_request()) {
        let wire = req.encode();
        let back = Request::parse(&wire).expect("own encoding parses");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.encode(), wire);
    }

    #[test]
    fn response_encode_parse_encode_is_a_fixed_point(resp in arb_response()) {
        let wire = resp.encode();
        let back = Response::parse(&wire).expect("own encoding parses");
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.encode(), wire.clone());
        // The wire form is one line: serve's framing can never split it.
        prop_assert!(!wire.contains('\n'), "{}", wire);
    }

    #[test]
    fn model_export_parse_export_is_a_fixed_point(model in arb_model()) {
        // The `bitfusion-model/1` document format the wire embeds: parsing
        // an export reconstructs the model, and re-export is byte-identical.
        let doc = export_model(&model).encode();
        let back = parse_model(&doc).expect("own export parses");
        prop_assert_eq!(&back, &model, "{}", doc);
        prop_assert_eq!(export_model(&back).encode(), doc);
    }

    #[test]
    fn quant_spec_compact_display_parse_is_a_fixed_point(spec in arb_quant_spec()) {
        // The protocol carries specs as their canonical compact spelling,
        // so Display ∘ parse must be lossless and canonical.
        let text = spec.to_string();
        let back = QuantSpec::parse(&text).expect("own spelling parses");
        prop_assert_eq!(&back, &spec, "{}", text);
        prop_assert_eq!(back.to_string(), text);
    }

    #[test]
    fn quant_spec_json_encode_parse_encode_is_a_fixed_point(spec in arb_quant_spec()) {
        // The `--quant <spec.json>` file format.
        let wire = quant_spec_to_json(&spec).encode();
        let doc = parse_json(&wire).expect("own encoding is valid JSON");
        let back = quant_spec_from_json(&doc).expect("own encoding parses");
        prop_assert_eq!(&back, &spec, "{}", wire);
        prop_assert_eq!(quant_spec_to_json(&back).encode(), wire);
    }
}

#[test]
fn every_request_variant_is_exercised() {
    // The strategies above must cover all nine commands; pin the
    // discriminants so a new variant cannot silently skip the round-trip.
    let external = ModelSource::External(Model::new(
        "tiny",
        vec![(
            "fc1",
            Layer::Dense(Dense {
                in_features: 64,
                out_features: 32,
                precision: PairPrecision::from_bits(4, 1).unwrap(),
            }),
        )],
    ));
    let mut seen = std::collections::BTreeSet::new();
    for req in [
        Request::List,
        Request::Report {
            model: external.clone(),
            batch: 1,
            bandwidth: None,
            arch: ArchPreset::Isca45nm,
            backend: None,
            quant: Some("uniform8".into()),
        },
        Request::Compare {
            model: ModelSource::zoo("x"),
            batch: 1,
            backend: None,
            quant: None,
        },
        Request::Asm {
            model: ModelSource::zoo("x"),
            batch: 1,
            arch: ArchPreset::Isca45nm,
            layer: None,
        },
        Request::Sweep {
            model: external,
            axis: SweepAxis::Batch,
            backend: None,
            quant: None,
        },
        Request::Dse(DseParams::default()),
        Request::Quantize {
            model: ModelSource::zoo("x"),
            quant: Some("default=4/1,layer:conv1=8/8".into()),
        },
        Request::Stats,
        Request::Shutdown,
    ] {
        seen.insert(req.cmd());
        let wire = req.encode();
        assert_eq!(Request::parse(&wire).unwrap(), req);
    }
    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec![
            "asm", "compare", "dse", "list", "quantize", "report", "shutdown", "stats", "sweep"
        ]
    );
}
