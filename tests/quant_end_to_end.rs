//! Acceptance tests for precision as a design-space axis: a `dse` request
//! with multiple quantization policies over the whole zoo must be
//! deterministic (byte-identical across worker counts), report the
//! heterogeneous-vs-uniform-8 benefit, and show uniform-16 slower-or-equal
//! on every network.

use bitfusion::service::protocol::{DseParams, ModelSource};
use bitfusion::service::{Request, Response, Session};

fn zoo_quant_params(workers: u64) -> DseParams {
    DseParams {
        rows: vec![32],
        cols: vec![16],
        ibuf_kb: vec![32],
        wbuf_kb: vec![64],
        obuf_kb: vec![16],
        bandwidth: vec![128, 256],
        batches: vec![1],
        quants: vec![
            "paper".to_string(),
            "uniform8".to_string(),
            "uniform16".to_string(),
        ],
        networks: None, // the whole eight-network zoo
        models: Vec::new(),
        workers,
        backend: None,
        resume: false,
    }
}

#[test]
fn zoo_quant_dse_is_deterministic_and_orders_precisions() {
    let session = Session::new();
    let baseline = session.handle(&Request::Dse(zoo_quant_params(1)));
    let baseline_bytes = baseline.encode();

    // Byte-identical for any worker count, even against a warm cache.
    for workers in [2, 4] {
        let again = session.handle(&Request::Dse(zoo_quant_params(workers)));
        assert_eq!(
            again.encode(),
            baseline_bytes,
            "{workers} workers changed the reply bytes"
        );
    }

    let Response::Dse(reply) = baseline else {
        panic!("expected dse reply, got {baseline_bytes}");
    };
    assert_eq!(reply.quants, ["paper", "uniform8", "uniform16"]);
    assert_eq!(reply.infeasible, 0, "{:?}", reply.infeasible_sample);
    assert_eq!(reply.speedup_baseline.as_deref(), Some("uniform8"));
    assert!(!reply.frontier.is_empty());
    // The bandwidth axis still shares compilations under the quant axis:
    // 8 networks × 3 quants × 1 geometry = 24 unique compiles for 48
    // points.
    assert_eq!(reply.compile_misses, 24);
    assert_eq!(reply.compile_hits, 24);

    // Per-network: the paper's heterogeneous assignment beats or matches
    // the fixed 8-bit datapath, and the fixed 16-bit datapath is strictly
    // slower-or-equal (here: strictly slower on every zoo network).
    let mut models_seen = 0;
    for s in &reply.quant_speedups {
        match s.quant.as_str() {
            "paper" => {
                models_seen += 1;
                assert!(
                    s.speedup >= 1.0,
                    "{}: paper {}x vs uniform8",
                    s.model,
                    s.speedup
                );
            }
            "uniform16" => assert!(
                s.speedup < 1.0,
                "{}: uniform16 {}x vs uniform8 — must be slower-or-equal",
                s.model,
                s.speedup
            ),
            other => panic!("unexpected quant {other}"),
        }
    }
    assert_eq!(models_seen, 8, "every zoo network must be compared");
}

#[test]
fn duplicate_quant_policies_are_rejected_not_merged() {
    // Two entries that canonicalize alike would merge into one
    // over-counted candidate and silently empty the frontier; the
    // session must refuse instead.
    let session = Session::new();
    let params = DseParams {
        quants: vec!["uniform8".to_string(), "default=8/8".to_string()],
        networks: Some(vec!["lstm".to_string()]),
        batches: vec![1],
        workers: 1,
        ..DseParams::default()
    };
    match session.handle(&Request::Dse(params)) {
        Response::Error { message } => {
            assert!(
                message.contains("default=8/8") && message.contains("uniform8"),
                "{message}"
            );
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn report_quant_overrides_change_cycles_monotonically() {
    let session = Session::new();
    let cycles = |quant: Option<&str>| {
        let resp = session.handle(&Request::Report {
            model: ModelSource::zoo("vgg-7"),
            batch: 1,
            bandwidth: None,
            arch: Default::default(),
            backend: None,
            quant: quant.map(str::to_string),
        });
        match resp {
            Response::Report(r) => {
                assert_eq!(r.quant.as_deref(), quant);
                r.cycles
            }
            other => panic!("{other:?}"),
        }
    };
    let paper = cycles(None); // VGG-7's Table II assignment is 2/2
    let u4 = cycles(Some("uniform4"));
    let u8 = cycles(Some("uniform8"));
    let u16 = cycles(Some("uniform16"));
    assert!(paper <= u4 && u4 <= u8 && u8 <= u16, "{paper} {u4} {u8} {u16}");
    assert!(u16 > paper, "16-bit must cost cycles over ternary");
}

#[test]
fn quantize_request_reports_the_assignment() {
    let session = Session::new();
    match session.handle(&Request::Quantize {
        model: ModelSource::zoo("alexnet"),
        quant: None,
    }) {
        Response::Quantize(r) => {
            assert_eq!(r.benchmark, "AlexNet");
            assert_eq!(r.quant, "paper");
            assert_eq!(r.layers.len(), 8);
            assert_eq!(r.layers[0].name, "conv1");
            assert_eq!((r.layers[0].input_bits, r.layers[0].weight_bits), (8, 8));
            assert_eq!((r.layers[1].input_bits, r.layers[1].weight_bits), (4, 1));
        }
        other => panic!("{other:?}"),
    }
    // Overrides act on top of the paper assignment.
    match session.handle(&Request::Quantize {
        model: ModelSource::zoo("alexnet"),
        quant: Some("fc=8/8".into()),
    }) {
        Response::Quantize(r) => {
            for l in &r.layers {
                let expect = match (l.kind.as_str(), l.name.as_str()) {
                    ("fc", _) => (8, 8),
                    (_, "conv1") => (8, 8),
                    _ => (4, 1),
                };
                assert_eq!((l.input_bits, l.weight_bits), expect, "{}", l.name);
            }
        }
        other => panic!("{other:?}"),
    }
    // A bad override is an error response naming the problem.
    match session.handle(&Request::Quantize {
        model: ModelSource::zoo("lstm"),
        quant: Some("layer:nope=4/4".into()),
    }) {
        Response::Error { message } => assert!(message.contains("nope"), "{message}"),
        other => panic!("{other:?}"),
    }
}
