//! Functional correctness at network scale: execute a small quantized
//! convnet end-to-end through the *fused BitBrick arithmetic* (systolic
//! GEMMs via im2col, per-column activation and pooling units) and compare
//! every output against a plain integer reference implementation.
//!
//! This is the strongest whole-system check that dynamic composition
//! (Figures 2/6/7) computes exactly what a conventional datapath would.

use bitfusion::core::bitwidth::{BitWidth, PairPrecision, Precision};
use bitfusion::core::postproc::{Activation, ActivationUnit, PoolOp, PoolingUnit};
use bitfusion::core::systolic::{IntMatrix, SystolicArray};
use bitfusion::core::util::SplitMix64;

/// A feature map: channels × height × width, row-major.
#[derive(Clone)]
struct Fmap {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<i32>,
}

impl Fmap {
    fn get(&self, c: usize, y: i64, x: i64) -> i32 {
        if y < 0 || x < 0 || y >= self.h as i64 || x >= self.w as i64 {
            0 // zero padding
        } else {
            self.data[(c * self.h + y as usize) * self.w + x as usize]
        }
    }
}

struct ConvSpec {
    out_c: usize,
    k: usize,
    pad: i64,
    pair: PairPrecision,
    requant_shift: u32,
}

/// Reference convolution + ReLU + requantization, plain integer math.
fn reference_conv(input: &Fmap, weights: &[i32], spec: &ConvSpec, act: &ActivationUnit) -> Fmap {
    let (oh, ow) = (input.h, input.w); // stride 1, same padding
    let mut out = Fmap {
        c: spec.out_c,
        h: oh,
        w: ow,
        data: vec![0; spec.out_c * oh * ow],
    };
    let kv = spec.k * spec.k * input.c;
    for oc in 0..spec.out_c {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc: i64 = 0;
                let mut wi = oc * kv;
                for ic in 0..input.c {
                    for dy in 0..spec.k {
                        for dx in 0..spec.k {
                            let v = input.get(
                                ic,
                                y as i64 + dy as i64 - spec.pad,
                                x as i64 + dx as i64 - spec.pad,
                            );
                            acc += v as i64 * weights[wi] as i64;
                            wi += 1;
                        }
                    }
                }
                out.data[(oc * oh + y) * ow + x] = act.process(acc);
            }
        }
    }
    out
}

/// The same convolution through the fused systolic datapath: im2col + the
/// BitBrick-decomposed GEMM + the activation unit.
fn fused_conv(input: &Fmap, weights: &[i32], spec: &ConvSpec, act: &ActivationUnit) -> Fmap {
    let (oh, ow) = (input.h, input.w);
    let kv = spec.k * spec.k * input.c;
    // im2col: columns are output pixels.
    let cols = IntMatrix::from_fn(kv, oh * ow, |r, col| {
        let (y, x) = (col / ow, col % ow);
        let ic = r / (spec.k * spec.k);
        let dy = (r / spec.k) % spec.k;
        let dx = r % spec.k;
        input.get(
            ic,
            y as i64 + dy as i64 - spec.pad,
            x as i64 + dx as i64 - spec.pad,
        )
    });
    let wmat = IntMatrix::from_fn(spec.out_c, kv, |m, k| weights[m * kv + k]);
    let array = SystolicArray::new(4, 4, spec.pair).expect("non-empty array");
    let (out_cols, _) = array.gemm(&wmat, &cols).expect("fused gemm");
    let mut out = Fmap {
        c: spec.out_c,
        h: oh,
        w: ow,
        data: vec![0; spec.out_c * oh * ow],
    };
    for (col, values) in out_cols.iter().enumerate() {
        let (y, x) = (col / ow, col % ow);
        for (oc, &v) in values.iter().enumerate() {
            out.data[(oc * oh + y) * ow + x] = act.process(v);
        }
    }
    out
}

fn maxpool2(input: &Fmap) -> Fmap {
    let unit = PoolingUnit::new(PoolOp::Max);
    let (oh, ow) = (input.h / 2, input.w / 2);
    let mut out = Fmap {
        c: input.c,
        h: oh,
        w: ow,
        data: vec![0; input.c * oh * ow],
    };
    for c in 0..input.c {
        for y in 0..oh {
            for x in 0..ow {
                let window = [
                    input.get(c, 2 * y as i64, 2 * x as i64),
                    input.get(c, 2 * y as i64, 2 * x as i64 + 1),
                    input.get(c, 2 * y as i64 + 1, 2 * x as i64),
                    input.get(c, 2 * y as i64 + 1, 2 * x as i64 + 1),
                ];
                out.data[(c * oh + y) * ow + x] = unit.reduce(&window);
            }
        }
    }
    out
}

#[test]
fn two_layer_convnet_fused_equals_reference() {
    let mut rng = SplitMix64::new(0xF00D);
    // Layer 1: 3 -> 8 channels, 3x3, ternary weights, 2-bit activations.
    let p22 = PairPrecision::from_bits(2, 2).expect("supported");
    let input = Fmap {
        c: 3,
        h: 12,
        w: 12,
        data: (0..3 * 12 * 12).map(|_| rng.range_i32(0, 3)).collect(),
    };
    let w1: Vec<i32> = (0..8 * 3 * 3 * 3).map(|_| rng.range_i32(-2, 1)).collect();
    let spec1 = ConvSpec {
        out_c: 8,
        k: 3,
        pad: 1,
        pair: p22,
        requant_shift: 3,
    };
    let act1 = ActivationUnit::new(
        Activation::Relu,
        spec1.requant_shift,
        Precision::unsigned(BitWidth::B2),
    );
    let ref1 = reference_conv(&input, &w1, &spec1, &act1);
    let fused1 = fused_conv(&input, &w1, &spec1, &act1);
    assert_eq!(ref1.data, fused1.data, "layer 1 mismatch");

    // Pool 2x2.
    let pooled = maxpool2(&fused1);

    // Layer 2: 8 -> 4 channels, 3x3, 4-bit weights, 2-bit activations.
    let p24 = PairPrecision::from_bits(2, 4).expect("supported");
    let w2: Vec<i32> = (0..4 * 8 * 3 * 3).map(|_| rng.range_i32(-8, 7)).collect();
    let spec2 = ConvSpec {
        out_c: 4,
        k: 3,
        pad: 1,
        pair: p24,
        requant_shift: 4,
    };
    let act2 = ActivationUnit::new(
        Activation::Relu,
        spec2.requant_shift,
        Precision::unsigned(BitWidth::B4),
    );
    let ref2 = reference_conv(&pooled, &w2, &spec2, &act2);
    let fused2 = fused_conv(&pooled, &w2, &spec2, &act2);
    assert_eq!(ref2.data, fused2.data, "layer 2 mismatch");

    // The outputs must be non-trivial (not all zeros), or the test proves
    // nothing.
    assert!(fused2.data.iter().any(|&v| v != 0));
}

#[test]
fn mixed_precision_dense_head_fused_equals_reference() {
    let mut rng = SplitMix64::new(0xBEEF);
    // 8-bit inputs x binary weights (the AlexNet edge-case pairing).
    let pair = PairPrecision::from_bits(8, 1).expect("supported");
    let (m, k) = (10, 64);
    let weights = IntMatrix::from_fn(m, k, |_, _| rng.range_i32(0, 1));
    let input: Vec<i32> = (0..k).map(|_| rng.range_i32(0, 255)).collect();
    let array = SystolicArray::new(8, 2, pair).expect("non-empty");
    let out = array.matvec(&weights, &input).expect("fused matvec");
    for (mi, &got) in out.values.iter().enumerate() {
        let expect: i64 = (0..k)
            .map(|ki| weights.get(mi, ki) as i64 * input[ki] as i64)
            .sum();
        assert_eq!(got, expect, "row {mi}");
    }
}
