//! The `bitfusion-model/1` external-model contract (the DESIGN.md
//! "External models" section):
//!
//! * **byte-identical round trips** — exporting any zoo network, parsing it
//!   back, and re-exporting must reproduce the original document byte for
//!   byte, and the re-parsed model must simulate identically to the zoo
//!   path (same golden-figure numbers, since it is the *same* model);
//! * **no cache aliasing** — two different external models that happen to
//!   share a `name` must never share an [`ArtifactKey`] or a [`LayerKey`]:
//!   keys carry a structural fingerprint, not the display name;
//! * **example workloads cross-validate** — the shipped attention-block and
//!   depthwise-net example models compile and agree across both simulation
//!   backends within the zoo's cycle band.

use bitfusion::compiler::cache::{fingerprint, layer_fingerprint, ArtifactKey, LayerKey};
use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::modern::{attention_block_example, depthwise_net_example};
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::dnn::{export_model, parse_model, Model};
use bitfusion::energy::FusionEnergy;
use bitfusion::sim::{
    AnalyticBackend, EventBackend, SimBackend, SimOptions, BACKEND_CYCLE_TOLERANCE,
};

#[test]
fn every_zoo_network_round_trips_byte_identically() {
    for b in Benchmark::ALL {
        for model in [b.model(), b.reference_model()] {
            let doc = export_model(&model).encode();
            let parsed = parse_model(&doc).expect("exported documents parse");
            assert_eq!(parsed, model, "{b}: parse must reconstruct the model");
            assert_eq!(
                export_model(&parsed).encode(),
                doc,
                "{b}: re-export must be byte-identical"
            );
        }
    }
}

#[test]
fn parsed_external_model_simulates_identically_to_the_zoo_path() {
    // The round trip preserves golden-figure numbers: compiling the
    // re-parsed document yields the same cycles/energy as the zoo model.
    let arch = ArchConfig::isca_45nm();
    let energy = FusionEnergy::isca_45nm();
    let opts = SimOptions::default();
    for b in [Benchmark::AlexNet, Benchmark::Lstm, Benchmark::Cifar10] {
        let zoo = b.model();
        let external = parse_model(&export_model(&zoo).encode()).expect("parses");
        let zp = compile(&zoo, &arch, 16).expect("compiles");
        let ep = compile(&external, &arch, 16).expect("compiles");
        for (zl, el) in zp.layers.iter().zip(&ep.layers) {
            let z = AnalyticBackend.evaluate_layer(zl, &arch, &energy, &opts);
            let e = AnalyticBackend.evaluate_layer(el, &arch, &energy, &opts);
            assert_eq!(z.cycles, e.cycles, "{b}/{}", zl.name);
            assert_eq!(z.dram_bits, e.dram_bits, "{b}/{}", zl.name);
            assert_eq!(z.energy, e.energy, "{b}/{}", zl.name);
        }
    }
}

#[test]
fn external_models_sharing_a_name_never_share_cache_keys() {
    // Both documents are named "net", but their shapes differ: the plan
    // cache and the layer-result cache must key on structure.
    let arch = ArchConfig::isca_45nm();
    let a: Model = parse_model(
        r#"{"format":"bitfusion-model/1","name":"net","layers":[{"name":"fc1","kind":"fc","in_features":128,"out_features":64,"precision":"8/8"}]}"#,
    )
    .expect("parses");
    let b: Model = parse_model(
        r#"{"format":"bitfusion-model/1","name":"net","layers":[{"name":"fc1","kind":"fc","in_features":256,"out_features":64,"precision":"8/8"}]}"#,
    )
    .expect("parses");
    assert_eq!(a.name, b.name);
    assert_ne!(fingerprint(&a), fingerprint(&b));
    assert_ne!(
        ArtifactKey::of(&a, &arch, 16),
        ArtifactKey::of(&b, &arch, 16),
        "plan-cache keys must not alias on the display name"
    );
    let pa = compile(&a, &arch, 16).expect("compiles");
    let pb = compile(&b, &arch, 16).expect("compiles");
    assert_ne!(
        LayerKey::of(layer_fingerprint(&pa.layers[0]), &arch, 16, 0),
        LayerKey::of(layer_fingerprint(&pb.layers[0]), &arch, 16, 0),
        "layer-cache keys must not alias on the display name"
    );
}

#[test]
fn example_models_cross_validate_under_both_backends() {
    // The shipped modern workloads obey the same backend-agreement contract
    // as the zoo (tests/backend_cross_validation.rs).
    let arch = ArchConfig::isca_45nm();
    let energy = FusionEnergy::isca_45nm();
    let opts = SimOptions::default();
    for model in [attention_block_example(), depthwise_net_example()] {
        // Each example also round-trips through its JSON document.
        let parsed = parse_model(&export_model(&model).encode()).expect("parses");
        assert_eq!(parsed, model);
        let plan = compile(&model, &arch, 16).expect("compiles");
        let mut event_cycles = 0u64;
        let mut analytic_cycles = 0u64;
        for layer in &plan.layers {
            let ev = EventBackend.evaluate_layer(layer, &arch, &energy, &opts);
            let an = AnalyticBackend.evaluate_layer(layer, &arch, &energy, &opts);
            assert_eq!(ev.dram_bits, an.dram_bits, "{}/{}", model.name, layer.name);
            assert_eq!(ev.macs, an.macs, "{}/{}", model.name, layer.name);
            assert_eq!(ev.energy, an.energy, "{}/{}", model.name, layer.name);
            event_cycles += ev.cycles;
            analytic_cycles += an.cycles;
        }
        let rel = (event_cycles as f64 - analytic_cycles as f64).abs() / analytic_cycles as f64;
        assert!(
            rel <= BACKEND_CYCLE_TOLERANCE,
            "{}: cycle models diverge {:.1}% (event {event_cycles}, analytic {analytic_cycles})",
            model.name,
            rel * 100.0
        );
    }
}
