//! Pins the paper's Table II / Figure 1 per-layer bitwidth assignment for
//! every multiplying layer of the zoo.
//!
//! The zoo is built as *topology + QuantSpec* (PR 5), which makes the
//! per-layer precisions data that a refactor could silently drift. This
//! golden table freezes the (input, weight) widths layer by layer: any
//! change to a zoo topology, a paper spec, or the spec-application
//! machinery that alters an assignment fails here and must be re-pinned
//! consciously.

use bitfusion::dnn::zoo::Benchmark;
use bitfusion::dnn::QuantSpec;

/// `(benchmark, layer, input_bits, weight_bits)` for every multiplying
/// layer, in execution order.
const GOLDEN_QUANT: &[(&str, &str, u32, u32)] = &[
    ("AlexNet", "conv1", 8, 8),
    ("AlexNet", "conv2", 4, 1),
    ("AlexNet", "conv3", 4, 1),
    ("AlexNet", "conv4", 4, 1),
    ("AlexNet", "conv5", 4, 1),
    ("AlexNet", "fc6", 4, 1),
    ("AlexNet", "fc7", 4, 1),
    ("AlexNet", "fc8", 8, 8),
    ("Cifar-10", "conv1", 8, 8),
    ("Cifar-10", "conv2", 1, 1),
    ("Cifar-10", "conv3", 1, 1),
    ("Cifar-10", "conv4", 1, 1),
    ("Cifar-10", "conv5", 1, 1),
    ("Cifar-10", "conv6", 1, 1),
    ("Cifar-10", "fc1", 1, 1),
    ("Cifar-10", "fc2", 1, 1),
    ("Cifar-10", "fc3", 8, 8),
    ("LSTM", "lstm1", 4, 4),
    ("LSTM", "lstm2", 4, 4),
    ("LeNet-5", "conv1", 2, 2),
    ("LeNet-5", "conv2", 2, 2),
    ("LeNet-5", "fc1", 2, 2),
    ("LeNet-5", "fc2", 2, 2),
    ("ResNet-18", "conv1", 2, 2),
    ("ResNet-18", "l1b1c1", 2, 2),
    ("ResNet-18", "l1b1c2", 2, 2),
    ("ResNet-18", "l1b2c1", 2, 2),
    ("ResNet-18", "l1b2c2", 2, 2),
    ("ResNet-18", "l2b1c1", 2, 2),
    ("ResNet-18", "l2b1c2", 2, 2),
    ("ResNet-18", "l2ds", 2, 2),
    ("ResNet-18", "l2b2c1", 2, 2),
    ("ResNet-18", "l2b2c2", 2, 2),
    ("ResNet-18", "l3b1c1", 2, 2),
    ("ResNet-18", "l3b1c2", 2, 2),
    ("ResNet-18", "l3ds", 2, 2),
    ("ResNet-18", "l3b2c1", 2, 2),
    ("ResNet-18", "l3b2c2", 2, 2),
    ("ResNet-18", "l4b1c1", 2, 2),
    ("ResNet-18", "l4b1c2", 2, 2),
    ("ResNet-18", "l4ds", 2, 2),
    ("ResNet-18", "l4b2c1", 2, 2),
    ("ResNet-18", "l4b2c2", 2, 2),
    ("ResNet-18", "fc", 2, 2),
    ("RNN", "rnn1", 4, 4),
    ("RNN", "rnn2", 4, 4),
    ("SVHN", "conv1", 8, 8),
    ("SVHN", "conv2", 1, 1),
    ("SVHN", "conv3", 1, 1),
    ("SVHN", "conv4", 1, 1),
    ("SVHN", "conv5", 1, 1),
    ("SVHN", "conv6", 1, 1),
    ("SVHN", "fc1", 1, 1),
    ("SVHN", "fc2", 1, 1),
    ("SVHN", "fc3", 8, 8),
    ("VGG-7", "conv1", 2, 2),
    ("VGG-7", "conv2", 2, 2),
    ("VGG-7", "conv3", 2, 2),
    ("VGG-7", "conv4", 2, 2),
    ("VGG-7", "conv5", 2, 2),
    ("VGG-7", "conv6", 2, 2),
    ("VGG-7", "fc1", 2, 2),
    ("VGG-7", "fc2", 2, 2),
];

/// The measured table: every multiplying layer of every zoo model.
fn measured() -> Vec<(String, String, u32, u32)> {
    Benchmark::ALL
        .iter()
        .flat_map(|b| {
            b.model()
                .mac_layers()
                .map(|l| {
                    let p = l.layer.precision().expect("mac layers carry precisions");
                    (
                        b.name().to_string(),
                        l.name.clone(),
                        p.input.bits(),
                        p.weight.bits(),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn paper_assignment_matches_the_golden_table() {
    let measured = measured();
    assert_eq!(
        measured.len(),
        GOLDEN_QUANT.len(),
        "multiplying layer count drifted"
    );
    for ((model, layer, i, w), &(gm, gl, gi, gw)) in measured.iter().zip(GOLDEN_QUANT) {
        assert_eq!(
            (model.as_str(), layer.as_str(), *i, *w),
            (gm, gl, gi, gw),
            "{gm}/{gl}: pinned {gi}/{gw}"
        );
    }
}

#[test]
fn golden_table_matches_figure_1_dominant_pairs() {
    // Cross-check against the paper's Figure 1 summary: the per-network
    // dominant (input, weight) pair implied by the table.
    let dominant = |name: &str| {
        let mut macs: std::collections::BTreeMap<(u32, u32), u64> = Default::default();
        for b in Benchmark::ALL {
            if b.name() != name {
                continue;
            }
            for l in b.model().mac_layers() {
                let p = l.layer.precision().unwrap();
                *macs.entry((p.input.bits(), p.weight.bits())).or_insert(0) += l.layer.macs();
            }
        }
        macs.into_iter().max_by_key(|&(_, m)| m).unwrap().0
    };
    assert_eq!(dominant("AlexNet"), (4, 1));
    assert_eq!(dominant("Cifar-10"), (1, 1));
    assert_eq!(dominant("LSTM"), (4, 4));
    assert_eq!(dominant("LeNet-5"), (2, 2));
    assert_eq!(dominant("ResNet-18"), (2, 2));
    assert_eq!(dominant("RNN"), (4, 4));
    assert_eq!(dominant("SVHN"), (1, 1));
    assert_eq!(dominant("VGG-7"), (2, 2));
}

#[test]
fn paper_specs_are_canonical_and_reapplicable() {
    // The spec that built each model must round-trip through its compact
    // spelling and reproduce the model when re-applied to the topology.
    for b in Benchmark::ALL {
        let spec = b.paper_quant();
        let respelled = QuantSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(respelled, spec, "{b}");
        assert_eq!(
            respelled.apply(&b.topology()).unwrap(),
            b.model(),
            "{b}: spec ∘ topology drifted from model()"
        );
    }
}
