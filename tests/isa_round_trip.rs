//! ISA integration: every block the compiler emits for every benchmark
//! survives binary encode/decode and text assemble/parse, and its walked
//! semantics agree with the compiler's analytic mapping.

use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::isa::asm::{format_block, parse_block};
use bitfusion::isa::encode::{decode_block, encode_block};
use bitfusion::isa::walker::summarize;
use bitfusion::isa::ComputeFn;

#[test]
fn binary_round_trip_all_compiled_blocks() {
    let arch = ArchConfig::isca_45nm();
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 16).expect("compiles");
        for l in &plan.layers {
            let words = encode_block(&l.block).expect("encodes");
            let decoded = decode_block(&l.name, &words).expect("decodes");
            assert_eq!(
                decoded.canonicalize().instructions(),
                l.block.canonicalize().instructions(),
                "{b}/{}",
                l.name
            );
            assert_eq!(decoded.bases, l.block.bases, "{b}/{}", l.name);
        }
    }
}

#[test]
fn text_round_trip_all_compiled_blocks() {
    let arch = ArchConfig::isca_45nm();
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 4).expect("compiles");
        for l in &plan.layers {
            let text = format_block(&l.block);
            let parsed = parse_block(&text).expect("parses");
            assert_eq!(parsed.instructions(), l.block.instructions(), "{b}/{}", l.name);
        }
    }
}

#[test]
fn walked_mac_count_matches_mapping_everywhere() {
    let arch = ArchConfig::isca_45nm();
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 16).expect("compiles");
        for l in &plan.layers {
            let s = summarize(&l.block);
            assert_eq!(
                s.compute_count(ComputeFn::Mac),
                l.mapping.compute_steps,
                "{b}/{}: walker vs mapping",
                b.name()
            );
            // Every MAC step is preceded by operand reads: rd-buf counts
            // match compute steps for both operand buffers.
            assert_eq!(
                s.buffer(bitfusion::isa::Scratchpad::Ibuf).reads,
                l.mapping.compute_steps,
                "{b}/{}",
                b.name()
            );
            assert_eq!(
                s.buffer(bitfusion::isa::Scratchpad::Wbuf).reads,
                l.mapping.compute_steps,
                "{b}/{}",
                b.name()
            );
        }
    }
}

#[test]
fn compute_steps_cover_macs_with_reasonable_utilization() {
    let arch = ArchConfig::isca_45nm();
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 16).expect("compiles");
        let mut peak = 0u64;
        let mut macs = 0u64;
        for l in &plan.layers {
            peak += l.mapping.compute_steps * l.mapping.lanes * l.mapping.cols;
            macs += l.mapping.macs;
        }
        assert!(peak >= macs, "{b}: steps cannot cover the MACs");
        let util = macs as f64 / peak as f64;
        assert!(
            util > 0.25,
            "{b}: array utilization {util:.2} suspiciously low"
        );
    }
}

#[test]
fn setup_precisions_span_the_paper_range() {
    // Across the suite the compiler must emit every precision the paper's
    // Figure 1 distribution contains: 1, 2, 4, and 8-bit operands.
    use std::collections::BTreeSet;
    let arch = ArchConfig::isca_45nm();
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 1).expect("compiles");
        for l in &plan.layers {
            let p = l.block.setup_pair();
            seen.insert((p.input.bits(), p.weight.bits()));
        }
    }
    for expected in [(1, 1), (2, 2), (4, 1), (4, 4), (8, 8)] {
        assert!(seen.contains(&expected), "missing {expected:?}; saw {seen:?}");
    }
}
