//! Cross-crate golden-figure regression wall.
//!
//! Every zoo network flows through the full stack — DNN IR → compiler →
//! Fusion-ISA (encode/decode round trip) → cycle-level simulator → energy
//! report — and the resulting cycle counts (from *both* simulation
//! backends), MAC counts, DRAM traffic, scratchpad access counts,
//! dynamic/static instruction counts, and energy totals are pinned against
//! golden values. Any future change to the compiler's tiling, the ISA's
//! semantics, or the simulator's timing/energy models that shifts these
//! numbers must update this table *consciously*.
//!
//! The harness runs the analytic and the trace-driven backend side by side:
//! their DRAM traffic, MACs, and energy must agree bit-exactly, and their
//! cycle totals within the documented tolerance band (see `DESIGN.md` and
//! `tests/backend_cross_validation.rs`).
//!
//! The harness also pins the bit-exactness invariant (Equations 1–3 of the
//! paper): for every network, every layer's fused multiply-accumulate result
//! is identical to a plain `i64` reference.
//!
//! Regenerate the table after an intentional model change with:
//!
//! ```text
//! cargo test --test golden_figures -- --ignored --nocapture print_golden_table
//! ```

use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::fusion::FusionUnit;
use bitfusion::core::util::SplitMix64;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::isa::encode::{decode_block, encode_block};
use bitfusion::isa::walker::summarize;
use bitfusion::sim::{BitFusionSim, BACKEND_CYCLE_TOLERANCE};

/// The batch size every golden row is pinned at (the paper's evaluation
/// batch).
const BATCH: u64 = 16;

/// One pinned end-to-end result: ISCA 45 nm configuration, batch 16.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Golden {
    name: &'static str,
    /// Fused layer groups in the compiled plan.
    layers: usize,
    /// Static Fusion-ISA instructions across the plan.
    static_instructions: usize,
    /// Dynamic instructions (walker summary) across the plan.
    dynamic_instructions: u64,
    /// Scratchpad accesses: `rd-buf` executions across all buffers.
    buf_reads: u64,
    /// Scratchpad accesses: `wr-buf` executions across all buffers.
    buf_writes: u64,
    /// Simulated cycles for the whole batch (analytic backend).
    cycles: u64,
    /// Simulated cycles for the whole batch (trace-driven event backend).
    event_cycles: u64,
    /// Multiply-accumulates (must equal model MACs × batch).
    macs: u64,
    /// Off-chip traffic in bits.
    dram_bits: u64,
    /// Total energy in pJ.
    energy_pj: f64,
}

/// Golden values, regenerated with `print_golden_table` (see module docs).
const GOLDEN: [Golden; 8] = [
    Golden {
        name: "AlexNet",
        layers: 8,
        static_instructions: 219,
        dynamic_instructions: 55412613,
        buf_reads: 34444800,
        buf_writes: 2637760,
        cycles: 30882928,
        event_cycles: 30912032,
        macs: 42857677824,
        dram_bits: 1756654904,
        energy_pj: 43681933522.45572,
    },
    Golden {
        name: "Cifar-10",
        layers: 9,
        static_instructions: 246,
        dynamic_instructions: 5275261,
        buf_reads: 3052544,
        buf_writes: 460816,
        cycles: 2766504,
        event_cycles: 2798654,
        macs: 9871458304,
        dram_bits: 73789696,
        energy_pj: 2262145423.533023,
    },
    Golden {
        name: "LSTM",
        layers: 2,
        static_instructions: 62,
        dynamic_instructions: 360902,
        buf_reads: 216000,
        buf_writes: 7200,
        cycles: 589536,
        event_cycles: 589942,
        macs: 207360000,
        dram_bits: 52761600,
        energy_pj: 1111880554.7466285,
    },
    Golden {
        name: "LeNet-5",
        layers: 4,
        static_instructions: 110,
        dynamic_instructions: 248796,
        buf_reads: 114752,
        buf_writes: 38672,
        cycles: 157777,
        event_cycles: 157600,
        macs: 222142464,
        dram_bits: 8144192,
        energy_pj: 211180483.87859634,
    },
    Golden {
        name: "ResNet-18",
        layers: 21,
        static_instructions: 585,
        dynamic_instructions: 37248487,
        buf_reads: 19923904,
        buf_writes: 4905712,
        cycles: 25149062,
        event_cycles: 25195738,
        macs: 63884328960,
        dram_bits: 1455440016,
        energy_pj: 38179479530.180145,
    },
    Golden {
        name: "RNN",
        layers: 2,
        static_instructions: 62,
        dynamic_instructions: 721424,
        buf_reads: 262144,
        buf_writes: 65536,
        cycles: 803195,
        event_cycles: 805718,
        macs: 268435456,
        dram_bits: 71696384,
        energy_pj: 1516598291.2092762,
    },
    Golden {
        name: "SVHN",
        layers: 9,
        static_instructions: 246,
        dynamic_instructions: 1854919,
        buf_reads: 1004544,
        buf_writes: 231440,
        cycles: 942585,
        event_cycles: 946023,
        macs: 2528280576,
        dram_bits: 19753728,
        energy_pj: 643948369.9333004,
    },
    Golden {
        name: "VGG-7",
        layers: 8,
        static_instructions: 219,
        dynamic_instructions: 3250455,
        buf_reads: 1769536,
        buf_writes: 360464,
        cycles: 1873983,
        event_cycles: 1920124,
        macs: 4994531328,
        dram_bits: 91202176,
        energy_pj: 2590077357.4979696,
    },
];

/// Run one benchmark through the whole stack and collect its fingerprint.
///
/// Along the way, every compiled block must survive the binary round trip
/// (compiler → encode → decode), pinning the ISA layer of the pipeline too.
fn observe(b: Benchmark) -> Golden {
    let arch = ArchConfig::isca_45nm();
    let sim = BitFusionSim::new(arch.clone());
    let event_sim = BitFusionSim::event(arch.clone());
    let model = b.model();
    let plan = compile(&model, &arch, BATCH).expect("zoo model compiles");

    let mut dynamic_instructions = 0u64;
    let mut buf_reads = 0u64;
    let mut buf_writes = 0u64;
    for l in &plan.layers {
        let words = encode_block(&l.block).expect("block encodes");
        let decoded = decode_block(&l.name, &words).expect("block decodes");
        assert_eq!(
            decoded.canonicalize().instructions(),
            l.block.canonicalize().instructions(),
            "{b}/{}: binary round trip must be lossless",
            l.name
        );
        let s = summarize(&l.block);
        dynamic_instructions += s.dynamic_instructions;
        for counts in &s.buffers {
            buf_reads += counts.reads;
            buf_writes += counts.writes;
        }
    }

    let report = sim.run_plan(&plan);
    assert_eq!(
        report.total_macs(),
        model.total_macs() * BATCH,
        "{b}: MACs must be conserved through the stack"
    );

    // Both backends over the same plan. The bit-exact traffic/MAC/energy
    // contract is owned by tests/backend_cross_validation.rs; here we pin
    // both cycle totals and check the shared tolerance band.
    let event_report = event_sim.run_plan(&plan);
    let rel = (event_report.total_cycles() as f64 - report.total_cycles() as f64).abs()
        / report.total_cycles() as f64;
    assert!(
        rel <= BACKEND_CYCLE_TOLERANCE,
        "{b}: backend cycle models diverge {:.1}%",
        rel * 100.0
    );

    Golden {
        name: b.name(),
        layers: plan.layers.len(),
        static_instructions: plan.static_instructions(),
        dynamic_instructions,
        buf_reads,
        buf_writes,
        cycles: report.total_cycles(),
        event_cycles: event_report.total_cycles(),
        macs: report.total_macs(),
        dram_bits: report.total_dram_bits(),
        energy_pj: report.total_energy().total_pj(),
    }
}

#[test]
fn golden_end_to_end_fingerprints() {
    // zip would silently truncate if the zoo grew: force the table to grow
    // with it.
    assert_eq!(
        Benchmark::ALL.len(),
        GOLDEN.len(),
        "a zoo network has no golden row — regenerate with print_golden_table"
    );
    for (b, golden) in Benchmark::ALL.into_iter().zip(GOLDEN) {
        let got = observe(b);
        assert_eq!(got.name, golden.name, "table order must match Benchmark::ALL");
        assert_eq!(got.layers, golden.layers, "{b}: compiled layer-group count");
        assert_eq!(
            got.static_instructions, golden.static_instructions,
            "{b}: static instruction count"
        );
        assert_eq!(
            got.dynamic_instructions, golden.dynamic_instructions,
            "{b}: dynamic instruction count"
        );
        assert_eq!(got.buf_reads, golden.buf_reads, "{b}: rd-buf access count");
        assert_eq!(got.buf_writes, golden.buf_writes, "{b}: wr-buf access count");
        assert_eq!(got.cycles, golden.cycles, "{b}: simulated cycles (analytic)");
        assert_eq!(
            got.event_cycles, golden.event_cycles,
            "{b}: simulated cycles (event backend)"
        );
        assert_eq!(got.macs, golden.macs, "{b}: MAC count");
        assert_eq!(got.dram_bits, golden.dram_bits, "{b}: DRAM traffic");
        let rel = (got.energy_pj - golden.energy_pj).abs() / golden.energy_pj.max(1.0);
        assert!(
            rel < 1e-9,
            "{b}: energy drifted: golden {} pJ, got {} pJ",
            golden.energy_pj,
            got.energy_pj
        );
    }
}

/// Every layer of every network computes bit-exactly: the Fusion Unit's
/// decomposed multiply-accumulate over each layer's actual precision pair
/// equals a plain `i64` dot product, including at the operand range extremes.
#[test]
fn golden_bit_exactness_per_network() {
    for b in Benchmark::ALL {
        let model = b.model();
        let mut rng = SplitMix64::new(0xB17F_0051 ^ b.name().len() as u64);
        for layer in model.mac_layers() {
            let pair = layer
                .layer
                .precision()
                .expect("mac_layers yields only MAC layers");
            let unit = FusionUnit::new(pair);
            let (ilo, ihi) = (pair.input.min_value(), pair.input.max_value());
            let (wlo, whi) = (pair.weight.min_value(), pair.weight.max_value());
            // Random in-range operands plus the four range-extreme corners.
            let mut pairs: Vec<(i32, i32)> = (0..128)
                .map(|_| (rng.range_i32(ilo, ihi), rng.range_i32(wlo, whi)))
                .collect();
            pairs.extend([(ilo, wlo), (ilo, whi), (ihi, wlo), (ihi, whi)]);
            let expected: i64 = pairs.iter().map(|&(a, w)| a as i64 * w as i64).sum();
            let r = unit
                .dot(&pairs, 0)
                .expect("in-range operands always evaluate");
            assert_eq!(
                r.psum_out, expected,
                "{b}/{}: fused result must equal i64 reference at {pair:?}",
                layer.name
            );
        }
    }
}

/// Regenerates the `GOLDEN` table (see module docs). Ignored by default so
/// `cargo test` never depends on its output.
#[test]
#[ignore = "regeneration helper, run with --ignored --nocapture"]
fn print_golden_table() {
    // Leading newline: the libtest harness prints "test ... " without a
    // newline first, and the CI drift check greps for `^const GOLDEN`.
    println!();
    println!("const GOLDEN: [Golden; 8] = [");
    for b in Benchmark::ALL {
        let g = observe(b);
        println!("    Golden {{");
        println!("        name: {:?},", g.name);
        println!("        layers: {},", g.layers);
        println!("        static_instructions: {},", g.static_instructions);
        println!("        dynamic_instructions: {},", g.dynamic_instructions);
        println!("        buf_reads: {},", g.buf_reads);
        println!("        buf_writes: {},", g.buf_writes);
        println!("        cycles: {},", g.cycles);
        println!("        event_cycles: {},", g.event_cycles);
        println!("        macs: {},", g.macs);
        println!("        dram_bits: {},", g.dram_bits);
        println!("        energy_pj: {:?},", g.energy_pj);
        println!("    }},");
    }
    println!("];");
}
