//! End-to-end integration: every zoo benchmark compiles and simulates, and
//! the whole-system invariants the paper's evaluation relies on hold.

use bitfusion::baselines::{EyerissSim, StripesSim};
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::sim::BitFusionSim;

#[test]
fn every_benchmark_simulates_at_multiple_batches() {
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    for b in Benchmark::ALL {
        for batch in [1u64, 4, 16] {
            let r = sim.run(&b.model(), batch).expect("compiles");
            assert!(r.total_cycles() > 0, "{b} batch {batch}");
            assert_eq!(
                r.total_macs(),
                b.model().total_macs() * batch,
                "{b} batch {batch}: MACs must be conserved"
            );
            assert!(r.total_energy().total_pj() > 0.0);
            assert!(r.total_dram_bits() > 0);
        }
    }
}

#[test]
fn batching_never_hurts_per_input_latency() {
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    for b in Benchmark::ALL {
        let mut prev = f64::INFINITY;
        for batch in [1u64, 4, 16, 64] {
            let r = sim.run(&b.model(), batch).expect("compiles");
            let per_input = r.total_cycles() as f64 / batch as f64;
            assert!(
                per_input <= prev * 1.02, // 2% slack for tile rounding
                "{b}: per-input cycles rose from {prev} to {per_input} at batch {batch}"
            );
            prev = per_input;
        }
    }
}

#[test]
fn more_bandwidth_never_hurts() {
    for b in Benchmark::ALL {
        let mut prev = u64::MAX;
        for bw in [32u32, 64, 128, 256, 512] {
            let sim = BitFusionSim::new(ArchConfig::isca_45nm().with_bandwidth(bw));
            let cycles = sim.run(&b.model(), 16).expect("compiles").total_cycles();
            assert!(
                cycles <= prev,
                "{b}: cycles rose from {prev} to {cycles} at {bw} b/cyc"
            );
            prev = cycles;
        }
    }
}

#[test]
fn lower_precision_is_never_slower() {
    // The same topology at lower bitwidths must run at least as fast: use
    // VGG-7's shapes at 2/2 (native) vs forced 8/8 vs forced 16/16.
    use bitfusion::core::bitwidth::PairPrecision;
    use bitfusion::dnn::layer::Layer;
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    let at_bits = |bits: u32| {
        let mut model = Benchmark::Vgg7.model();
        for l in &mut model.layers {
            let p = PairPrecision::from_bits(bits, bits).expect("supported");
            match &mut l.layer {
                Layer::Conv2d(c) => c.precision = p,
                Layer::Dense(d) => d.precision = p,
                Layer::Recurrent(r) => r.precision = p,
                _ => {}
            }
        }
        sim.run(&model, 16).expect("compiles").total_cycles()
    };
    let c2 = at_bits(2);
    let c8 = at_bits(8);
    let c16 = at_bits(16);
    assert!(c2 < c8, "2-bit {c2} vs 8-bit {c8}");
    assert!(c8 < c16, "8-bit {c8} vs 16-bit {c16}");
    // And the 8->2 bit step buys at least 4x on this compute-bound net.
    assert!(c8 as f64 / c2 as f64 > 3.0, "only {}x", c8 as f64 / c2 as f64);
}

#[test]
fn bitfusion_beats_both_accelerator_baselines_everywhere() {
    // Figure 13 / Figure 18 headline: Bit Fusion wins on every benchmark.
    let bf = BitFusionSim::new(ArchConfig::isca_45nm());
    let bf_st = BitFusionSim::new(ArchConfig::stripes_matched());
    let ey = EyerissSim::default();
    let st = StripesSim::default();
    for b in Benchmark::ALL {
        let r = bf.run(&b.model(), 16).expect("compiles");
        let e = ey.run(&b.reference_model(), 16);
        assert!(
            e.runtime_ms > r.runtime_ms(),
            "{b}: Eyeriss {} <= BitFusion {}",
            e.runtime_ms,
            r.runtime_ms()
        );
        assert!(
            e.energy.total_pj() > r.total_energy().total_pj(),
            "{b}: Eyeriss energy should exceed BitFusion's"
        );
        let rs = bf_st.run(&b.model(), 16).expect("compiles");
        let s = st.run(&b.model(), 16);
        assert!(
            s.runtime_ms > rs.runtime_ms(),
            "{b}: Stripes {} <= BitFusion {}",
            s.runtime_ms,
            rs.runtime_ms()
        );
    }
}

#[test]
fn per_benchmark_speedup_ordering_matches_paper() {
    // Figure 13's qualitative ordering: binary nets top, wide 8-bit-edged
    // nets bottom, recurrent nets in the lower half (bandwidth-bound).
    let bf = BitFusionSim::new(ArchConfig::isca_45nm());
    let ey = EyerissSim::default();
    let speedup = |b: Benchmark| {
        let r = bf.run(&b.model(), 16).expect("compiles");
        let e = ey.run(&b.reference_model(), 16);
        e.runtime_ms / r.runtime_ms()
    };
    let alexnet = speedup(Benchmark::AlexNet);
    let cifar = speedup(Benchmark::Cifar10);
    let svhn = speedup(Benchmark::Svhn);
    let lstm = speedup(Benchmark::Lstm);
    assert!(cifar > svhn, "cifar {cifar} vs svhn {svhn}");
    assert!(svhn > alexnet, "svhn {svhn} vs alexnet {alexnet}");
    assert!(cifar > lstm, "cifar {cifar} vs lstm {lstm}");
    assert!(alexnet < lstm, "alexnet must be the floor");
}

#[test]
fn gpu_comparison_shape() {
    use bitfusion::baselines::{GpuMode, GpuModel};
    let tx2 = GpuModel::tegra_x2();
    let txp = GpuModel::titan_xp();
    let bf16 = BitFusionSim::new(ArchConfig::gpu_16nm());
    for b in Benchmark::ALL {
        let m = b.reference_model();
        let base = tx2.run(&m, 16, GpuMode::Fp32);
        let fp32 = txp.run(&m, 16, GpuMode::Fp32);
        let int8 = txp.run(&m, 16, GpuMode::Int8);
        // Titan beats TX2; INT8 beats FP32; Bit Fusion beats TX2.
        assert!(fp32.runtime_ms < base.runtime_ms, "{b}");
        assert!(int8.runtime_ms < fp32.runtime_ms, "{b}");
        let r = bf16.run(&b.model(), 16).expect("compiles");
        assert!(r.runtime_ms() < base.runtime_ms, "{b}: must beat TX2");
    }
}

#[test]
fn sixteen_nm_power_brackets_the_papers_895_mw() {
    // §V-A: "The scaled Bit Fusion architecture ... consumes 895 milliwatts
    // of power." Average power = energy / runtime at the 16 nm node must
    // bracket that figure across the suite — an emergent check, since the
    // energy model was never calibrated to power.
    use bitfusion::energy::TechNode;
    use bitfusion::sim::SimOptions;
    let opts = SimOptions {
        node: TechNode::Nm16,
        ..SimOptions::default()
    };
    let sim = BitFusionSim::new(ArchConfig::gpu_16nm()).with_options(opts);
    for b in Benchmark::ALL {
        let r = sim.run(&b.model(), 16).expect("compiles");
        let watts = r.total_energy().total_pj() / 1e12 / (r.runtime_ms() / 1e3);
        assert!(
            (0.2..=2.0).contains(&watts),
            "{b}: {watts:.3} W is far from the paper's 0.895 W"
        );
    }
}

#[test]
fn synthetic_workloads_compile_and_simulate() {
    // Robustness beyond the zoo: irregular seeded models (odd channel
    // counts, mixed precisions, non-dividing shapes) must flow through the
    // whole stack — compile, encode, simulate — without error.
    use bitfusion::dnn::synth::{synthesize, SynthConfig};
    use bitfusion::isa::encode::{decode_block, encode_block};
    let sim = BitFusionSim::new(ArchConfig::isca_45nm());
    let cfg = SynthConfig::default();
    for seed in 0..24 {
        let model = synthesize(cfg, seed);
        let plan = bitfusion::compiler::compile(&model, sim.arch(), 4)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for l in &plan.layers {
            let words = encode_block(&l.block).expect("encodes");
            decode_block(&l.name, &words).expect("decodes");
        }
        let report = sim.run_plan(&plan);
        assert!(report.total_cycles() > 0, "seed {seed}");
        assert_eq!(report.total_macs(), model.total_macs() * 4, "seed {seed}");
    }
}
