//! Smoke tests for the workspace example targets: the two entry-point
//! examples must build, run to completion, and print their headline output.
//! (The remaining examples are compiled by `cargo build --examples` / CI but
//! not executed here — they sweep the whole zoo and take longer.)

use std::process::Command;

/// Run one example via the same cargo that is running this test.
fn run_example(name: &str) -> (bool, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let out = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.success(), format!("{stdout}\n{stderr}"))
}

#[test]
fn quickstart_runs() {
    let (ok, output) = run_example("quickstart");
    assert!(ok, "quickstart exited nonzero:\n{output}");
    assert!(
        output.contains("quickstart-net"),
        "missing model banner:\n{output}"
    );
    assert!(
        output.contains("setup"),
        "missing Fusion-ISA block dump:\n{output}"
    );
}

#[test]
fn isa_playground_runs() {
    let (ok, output) = run_example("isa_playground");
    assert!(ok, "isa_playground exited nonzero:\n{output}");
    assert!(
        output.contains(".block hand-matvec"),
        "missing assembly dump:\n{output}"
    );
    assert!(
        output.contains("ld-mem"),
        "missing DMA instructions:\n{output}"
    );
}
