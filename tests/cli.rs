//! Integration tests for the `bitfusion-cli` binary: argument errors name
//! the offending flag and subcommand with a non-zero exit code, `--json`
//! output parses through the protocol, and `serve` answers a mixed request
//! script with responses byte-identical to the corresponding one-shot
//! `--json` invocations (the service layer's determinism contract).

use std::io::Write;
use std::process::{Command, Output, Stdio};

use bitfusion::service::Response;

const BIN: &str = env!("CARGO_BIN_EXE_bitfusion-cli");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("binary spawns")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_flag_names_flag_and_subcommand() {
    let out = run(&["report", "lstm", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("report"), "{err}");
    assert!(err.contains("--frobnicate"), "{err}");
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    let out = run(&["report", "lstm", "--batch"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("--batch needs a value"), "{err}");

    let out = run(&["sweep", "rnn"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--batch or --bandwidth"));
}

#[test]
fn unknown_benchmark_fails_nonzero_and_names_it() {
    let out = run(&["report", "resnet-99"]);
    assert_eq!(out.status.code(), Some(1), "runtime error, not usage error");
    let err = stderr_of(&out);
    assert!(err.contains("resnet-99"), "{err}");
    assert!(err.contains("alexnet"), "suggests valid names: {err}");

    // In --json mode the error is still machine-readable on stdout.
    let out = run(&["report", "resnet-99", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    match Response::parse(stdout_of(&out).trim()) {
        Ok(Response::Error { message }) => assert!(message.contains("resnet-99")),
        other => panic!("expected error response, got {other:?}"),
    }
}

#[test]
fn unknown_subcommand_fails() {
    let out = run(&["transmogrify"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("transmogrify"));
}

#[test]
fn json_flag_works_on_every_subcommand() {
    let invocations: &[&[&str]] = &[
        &["list", "--json"],
        &["report", "rnn", "--batch", "1", "--json"],
        &["compare", "rnn", "--batch", "1", "--json"],
        &["asm", "rnn", "--batch", "1", "--json"],
        &["sweep", "rnn", "--batch", "--json"],
        &[
            "dse", "--rows", "16", "--cols", "16", "--bandwidth", "64,128", "--networks", "rnn",
            "--workers", "1", "--json",
        ],
    ];
    for args in invocations {
        let out = run(args);
        assert!(out.status.success(), "{args:?}: {}", stderr_of(&out));
        let text = stdout_of(&out);
        let line = text.trim();
        assert!(!line.contains('\n'), "{args:?}: --json is one line");
        let resp = Response::parse(line).unwrap_or_else(|e| panic!("{args:?}: {e}"));
        assert!(
            !matches!(resp, Response::Error { .. }),
            "{args:?} answered an error"
        );
    }
}

#[test]
fn calibration_knobs_change_the_report() {
    let fast = stdout_of(&run(&["report", "vgg-7", "--batch", "1", "--json"]));
    let slow = stdout_of(&run(&[
        "report", "vgg-7", "--batch", "1", "--systolic-efficiency", "0.4", "--json",
    ]));
    let cycles = |text: &str| match Response::parse(text.trim()).unwrap() {
        Response::Report(r) => r.cycles,
        other => panic!("{other:?}"),
    };
    assert!(cycles(&slow) > cycles(&fast));

    let out = run(&["report", "rnn", "--systolic-efficiency", "2.0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--systolic-efficiency"));
}

#[test]
fn serve_responses_are_byte_identical_to_one_shot_json() {
    // The acceptance scenario: a mixed script covering report, compare,
    // sweep, and dse, plus a malformed line that must answer an error
    // without derailing the loop.
    let one_shots: &[&[&str]] = &[
        &["report", "rnn", "--batch", "16", "--json"],
        &["compare", "lstm", "--batch", "4", "--json"],
        &["sweep", "rnn", "--bandwidth", "--json"],
        &[
            "dse", "--rows", "16,32", "--cols", "16", "--bandwidth", "64,128", "--networks",
            "lstm,rnn", "--workers", "2", "--json",
        ],
        &["report", "rnn", "--batch", "16", "--backend", "event", "--json"],
    ];
    let script = "\
{\"cmd\":\"report\",\"benchmark\":\"rnn\",\"batch\":16}\n\
{\"cmd\":\"compare\",\"benchmark\":\"lstm\",\"batch\":4}\n\
{\"cmd\":\"sweep\",\"benchmark\":\"rnn\",\"axis\":\"bandwidth\"}\n\
{\"cmd\":\"dse\",\"rows\":[16,32],\"cols\":[16],\"bandwidth\":[64,128],\"networks\":[\"lstm\",\"rnn\"],\"workers\":2}\n\
{\"cmd\":\"report\",\"benchmark\":\"rnn\",\"batch\":16,\"backend\":\"event\"}\n\
this is not json\n";

    let mut child = Command::new(BIN)
        .args(["serve", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{}", stderr_of(&out));

    let stdout = stdout_of(&out);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request line:\n{stdout}");

    for (i, args) in one_shots.iter().enumerate() {
        let one_shot = run(args);
        assert!(one_shot.status.success(), "{args:?}");
        let expected = stdout_of(&one_shot);
        assert_eq!(
            lines[i],
            expected.trim_end(),
            "serve line {i} differs from one-shot {args:?}"
        );
    }
    match Response::parse(lines[5]) {
        Ok(Response::Error { .. }) => {}
        other => panic!("malformed line must answer an error, got {other:?}"),
    }
    // The serve summary reports both cache tiers' effectiveness, and this
    // script touched both — so neither rate may read `n/a`.
    let err = stderr_of(&out);
    assert!(err.contains("artifact cache"), "{err}");
    assert!(err.contains("layer cache"), "{err}");
    assert!(!err.contains("n/a"), "both tiers were exercised: {err}");
}

#[test]
fn serve_summary_says_na_for_untouched_caches() {
    // A session that never simulates leaves both tiers untouched; the
    // summary must say `n/a`, not `0.0%` — there is no rate to report.
    let mut child = Command::new(BIN)
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"{\"cmd\":\"list\"}\n")
        .expect("script written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("n/a"), "{err}");
    assert!(!err.contains("0.0%"), "{err}");
}

#[test]
fn quantize_subcommand_and_quant_flags_work() {
    // quantize --json parses through the protocol.
    let out = run(&["quantize", "alexnet", "--quant", "uniform8", "--json"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    match Response::parse(stdout_of(&out).trim()) {
        Ok(Response::Quantize(r)) => {
            assert_eq!(r.quant, "uniform8");
            assert!(r.layers.iter().all(|l| l.weight_bits == 8));
        }
        other => panic!("{other:?}"),
    }

    // --quant changes report results; the echoed spelling is canonical.
    let paper = run(&["report", "vgg-7", "--batch", "1", "--json"]);
    let wide = run(&[
        "report", "vgg-7", "--batch", "1", "--quant", "default=16/16", "--json",
    ]);
    let cycles = |out: &Output| match Response::parse(stdout_of(out).trim()).unwrap() {
        Response::Report(r) => (r.cycles, r.quant),
        other => panic!("{other:?}"),
    };
    let (paper_cycles, paper_quant) = cycles(&paper);
    let (wide_cycles, wide_quant) = cycles(&wide);
    assert_eq!(paper_quant, None);
    assert_eq!(wide_quant.as_deref(), Some("uniform16"));
    assert!(wide_cycles > paper_cycles);

    // A .json spec file works on the simulating subcommands.
    let dir = std::env::temp_dir().join("bitfusion-cli-quant-test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("edge8.json");
    std::fs::write(
        &spec_path,
        r#"{"default":"4/4","layers":[{"layer":"conv1","precision":"8/8"}]}"#,
    )
    .unwrap();
    let out = run(&[
        "quantize", "vgg-7", "--quant", spec_path.to_str().unwrap(), "--json",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    match Response::parse(stdout_of(&out).trim()) {
        Ok(Response::Quantize(r)) => {
            assert_eq!(r.quant, "default=4/4,layer:conv1=8/8");
            assert_eq!((r.layers[0].input_bits, r.layers[0].weight_bits), (8, 8));
            assert_eq!((r.layers[1].input_bits, r.layers[1].weight_bits), (4, 4));
        }
        other => panic!("{other:?}"),
    }

    // An invalid spec is a usage error naming the problem.
    let out = run(&["report", "rnn", "--quant", "uniform9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("uniform9"));
}

#[test]
fn dse_quant_axis_is_byte_identical_across_worker_counts() {
    // The acceptance criterion: a dse over ≥2 quant specs emits a
    // deterministic frontier and quant speedups — byte-identical whatever
    // the worker count.
    let dse = |workers: &str| {
        let out = run(&[
            "dse", "--rows", "16", "--cols", "16", "--bandwidth", "64,128", "--networks",
            "lstm,rnn,vgg-7", "--batch", "4", "--quant", "paper,uniform8,uniform16",
            "--workers", workers, "--json",
        ]);
        assert!(out.status.success(), "{}", stderr_of(&out));
        stdout_of(&out)
    };
    let sequential = dse("1");
    for workers in ["2", "4"] {
        assert_eq!(dse(workers), sequential, "{workers} workers");
    }
    match Response::parse(sequential.trim()).unwrap() {
        Response::Dse(r) => {
            assert_eq!(r.quants, ["paper", "uniform8", "uniform16"]);
            assert_eq!(r.speedup_baseline.as_deref(), Some("uniform8"));
            // Three networks × (paper, uniform16).
            assert_eq!(r.quant_speedups.len(), 6);
            for s in &r.quant_speedups {
                match s.quant.as_str() {
                    "paper" => assert!(s.speedup >= 1.0, "{}: {}", s.model, s.speedup),
                    "uniform16" => assert!(s.speedup < 1.0, "{}: {}", s.model, s.speedup),
                    other => panic!("{other}"),
                }
            }
            // The frontier names the quantization of each candidate.
            assert!(!r.frontier.is_empty());
            for f in &r.frontier {
                assert!(!f.quant.is_empty());
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn export_model_round_trips_through_model_flag() {
    // Satellite scenario: export a zoo network, feed the file back through
    // `--model`, and the report must be byte-identical to the zoo-name
    // path — external ingestion adds no drift.
    let exported = run(&["export-model", "resnet-18"]);
    assert!(exported.status.success(), "{}", stderr_of(&exported));
    let doc = stdout_of(&exported);
    let line = doc.trim_end();
    assert!(!line.contains('\n'), "one JSON document per export");
    assert!(line.starts_with(r#"{"format":"bitfusion-model/1""#), "{line}");

    // The export is a fixed point of the codec: parse + re-export is
    // byte-identical.
    let model = bitfusion::dnn::parse_model(line).expect("export parses");
    assert_eq!(bitfusion::dnn::export_model(&model).encode(), line);

    let dir = std::env::temp_dir().join("bitfusion-cli-export-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resnet-18.json");
    std::fs::write(&path, &doc).unwrap();

    let by_name = run(&["report", "resnet-18", "--batch", "16", "--json"]);
    let by_file = run(&[
        "report", "--model", path.to_str().unwrap(), "--batch", "16", "--json",
    ]);
    assert!(by_file.status.success(), "{}", stderr_of(&by_file));
    assert_eq!(stdout_of(&by_file), stdout_of(&by_name));

    // Unknown names fail at runtime (exit 1) listing what exists.
    let out = run(&["export-model", "resnet-99"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    assert!(err.contains("resnet-99"), "{err}");
    assert!(err.contains("attention-block"), "{err}");
}

#[test]
fn example_model_files_simulate_and_match_their_builders() {
    // The shipped example documents stay in lockstep with the in-tree
    // builders (export-model is the regeneration path), and both simulate
    // through `--model` under either backend.
    for (file, name) in [
        ("examples/models/attention-block.json", "attention-block"),
        ("examples/models/depthwise-net.json", "depthwise-net"),
    ] {
        let on_disk = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("{file}: {e}"));
        let exported = run(&["export-model", name]);
        assert!(exported.status.success(), "{}", stderr_of(&exported));
        assert_eq!(
            stdout_of(&exported),
            on_disk,
            "{file} is stale; regenerate with `bitfusion-cli export-model {name}`"
        );
        for backend in ["analytic", "event"] {
            let out = run(&[
                "report", "--model", file, "--batch", "16", "--backend", backend, "--json",
            ]);
            assert!(out.status.success(), "{file} ({backend}): {}", stderr_of(&out));
            match Response::parse(stdout_of(&out).trim()).unwrap() {
                Response::Report(r) => {
                    assert_eq!(r.benchmark, name);
                    assert!(r.cycles > 0);
                }
                other => panic!("{other:?}"),
            }
        }
    }
}

#[test]
fn serve_and_one_shot_asm_agree() {
    let one_shot = run(&["asm", "lenet-5", "--batch", "1", "--layer", "conv1", "--json"]);
    assert!(one_shot.status.success(), "{}", stderr_of(&one_shot));
    let mut child = Command::new(BIN)
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"cmd\":\"asm\",\"benchmark\":\"lenet-5\",\"batch\":1,\"layer\":\"conv1\"}\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        stdout_of(&out).trim_end(),
        stdout_of(&one_shot).trim_end()
    );
}

// ---------------------------------------------------------------------------
// Network serve: child-process tests over real sockets. The in-process
// protocol mechanics (coalescing, shedding, idle reaping) live in
// crates/service/tests/net_serve.rs; these pin the CLI surface: flag
// parsing, the client subcommand, the determinism contract across the
// whole binary, and clean shutdown.

#[cfg(unix)]
fn wait_for_socket(path: &std::path::Path) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !path.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "server never bound {}",
            path.display()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[cfg(unix)]
#[test]
fn network_serve_over_unix_socket_matches_one_shot() {
    let sock = std::env::temp_dir().join(format!(
        "bitfusion-cli-net-{}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&sock);
    let sock_str = sock.to_str().unwrap().to_string();
    let child = Command::new(BIN)
        .args(["serve", "--unix", &sock_str, "--workers", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    wait_for_socket(&sock);

    // Every response over the socket is byte-identical to the same
    // subcommand run as a fresh one-shot `--json` invocation.
    let scripts: &[&[&str]] = &[
        &["report", "rnn", "--batch", "1"],
        &["sweep", "lstm", "--bandwidth"],
        &["dse", "--rows", "16,32", "--cols", "16,32", "--networks", "rnn"],
        &["quantize", "svhn"],
    ];
    for script in scripts {
        let mut one_shot_args: Vec<&str> = script.to_vec();
        one_shot_args.push("--json");
        let one_shot = run(&one_shot_args);
        assert!(one_shot.status.success(), "{}", stderr_of(&one_shot));

        let mut client_args = vec!["client", "--unix", &sock_str];
        client_args.extend(one_shot_args.iter().copied());
        let via_net = run(&client_args);
        assert!(via_net.status.success(), "{}", stderr_of(&via_net));
        assert_eq!(
            stdout_of(&via_net),
            stdout_of(&one_shot),
            "socket and one-shot bytes diverge for {script:?}"
        );
    }

    // The client also renders human output (no --json) without failing.
    let human = run(&["client", "--unix", &sock_str, "report", "rnn", "--batch", "1"]);
    assert!(human.status.success(), "{}", stderr_of(&human));
    assert!(stdout_of(&human).contains("rnn"), "{}", stdout_of(&human));

    // Raw-JSON payload form + the live stats endpoint.
    let stats = run(&["client", "--unix", &sock_str, r#"{"cmd":"stats"}"#]);
    assert!(stats.status.success(), "{}", stderr_of(&stats));
    let stats_line = stdout_of(&stats);
    for field in ["\"reply\":\"stats\"", "\"coalesced\"", "\"latency_us\"", "\"layer_cache\""] {
        assert!(stats_line.contains(field), "{field} missing from {stats_line}");
    }
    assert!(!stats_line.contains("time\""), "no timestamps: {stats_line}");

    // Admin shutdown over the unix socket: acknowledged, then the server
    // drains, prints its two-tier cache summary, and exits cleanly.
    let bye = run(&["client", "--unix", &sock_str, r#"{"cmd":"shutdown"}"#]);
    assert!(bye.status.success(), "{}", stderr_of(&bye));
    assert_eq!(stdout_of(&bye).trim_end(), r#"{"reply":"shutdown"}"#);
    let out = child.wait_with_output().expect("server exits");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("listening on"), "{err}");
    assert!(err.contains("artifact cache:"), "{err}");
    assert!(err.contains("layer cache:"), "{err}");
    assert!(err.contains("connections"), "{err}");
    assert!(!sock.exists(), "socket file removed on shutdown");
}

#[test]
fn network_serve_over_tcp_answers_and_drains_on_sigint() {
    use std::io::{BufRead, BufReader};

    let mut child = Command::new(BIN)
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    // The startup line names the resolved ephemeral port.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line}"))
        .to_string();

    let one_shot = run(&["list", "--json"]);
    let via_net = run(&["client", "--connect", &addr, "list", "--json"]);
    assert!(via_net.status.success(), "{}", stderr_of(&via_net));
    assert_eq!(stdout_of(&via_net), stdout_of(&one_shot));

    // `shutdown` is an admin request, honoured on unix sockets only.
    let refused = run(&["client", "--connect", &addr, r#"{"cmd":"shutdown"}"#]);
    assert_eq!(refused.status.code(), Some(1), "refusal is an error reply");
    assert!(stdout_of(&refused).contains("unix"), "{}", stdout_of(&refused));

    // SIGINT drains the server: clean exit plus the cache summary.
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = child.wait().expect("server exits");
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut rest).unwrap();
    assert!(rest.contains("artifact cache:"), "{rest}");
    assert!(rest.contains("connections"), "{rest}");
}

#[test]
fn client_and_serve_flag_validation() {
    // client needs exactly one transport.
    let out = run(&["client", "report", "rnn"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--connect"), "{}", stderr_of(&out));

    let out = run(&["client", "--connect", "a", "--unix", "b", r#"{"cmd":"list"}"#]);
    assert_eq!(out.status.code(), Some(2));

    // Calibration belongs to the server's session, not the client.
    let out = run(&[
        "client", "--unix", "/tmp/nope.sock",
        "report", "rnn", "--systolic-efficiency", "0.9",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("serve"), "{}", stderr_of(&out));

    // Net-only serve flags require a listener.
    let out = run(&["serve", "--max-queue", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--max-queue"), "{}", stderr_of(&out));

    let out = run(&["serve", "--listen", "a", "--unix", "b"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("not both"), "{}", stderr_of(&out));

    // A dead endpoint is a runtime error (exit 1), not a usage error.
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
        // dropped here, so the port is free (and connecting is refused)
    };
    let out = run(&["client", "--connect", &format!("127.0.0.1:{port}"), r#"{"cmd":"list"}"#]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("client:"), "{}", stderr_of(&out));
}
