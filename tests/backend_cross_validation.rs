//! Cross-validation of the two simulation backends (the `DESIGN.md`
//! "Simulation backends" contract):
//!
//! * **bit-exact invariants** — for every zoo network, every layer, the
//!   trace-driven [`EventBackend`] must report *exactly* the same DRAM
//!   traffic, MAC count, and energy breakdown as the closed-form
//!   [`AnalyticBackend`]. Traffic flows from the same compiled blocks
//!   (segment stream vs analytic summary) and energy from the shared model,
//!   so any divergence is a segmentation or bookkeeping bug;
//! * **cycle tolerance band** — the two timing models describe the same
//!   double-buffered machine at different granularity, so per-network total
//!   cycles must agree within `BACKEND_CYCLE_TOLERANCE`. The event backend
//!   is the source of truth for timeline detail (stall attribution,
//!   occupancy); the analytic backend is the cheap sweep path.

use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::energy::FusionEnergy;
use bitfusion::sim::{
    AnalyticBackend, EventBackend, SimBackend, SimOptions, BACKEND_CYCLE_TOLERANCE,
};

#[test]
fn backends_agree_on_every_zoo_network() {
    let arch = ArchConfig::isca_45nm();
    let energy = FusionEnergy::isca_45nm();
    let opts = SimOptions::default();
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 16).expect("zoo model compiles");
        let mut event_cycles = 0u64;
        let mut analytic_cycles = 0u64;
        for layer in &plan.layers {
            let ev = EventBackend.evaluate_layer(layer, &arch, &energy, &opts);
            let an = AnalyticBackend.evaluate_layer(layer, &arch, &energy, &opts);
            // Bit-exact invariants.
            assert_eq!(ev.dram_bits, an.dram_bits, "{b}/{}: DRAM traffic", layer.name);
            assert_eq!(ev.macs, an.macs, "{b}/{}: MAC count", layer.name);
            assert_eq!(ev.energy, an.energy, "{b}/{}: energy breakdown", layer.name);
            event_cycles += ev.cycles;
            analytic_cycles += an.cycles;
        }
        let rel = (event_cycles as f64 - analytic_cycles as f64).abs() / analytic_cycles as f64;
        assert!(
            rel <= BACKEND_CYCLE_TOLERANCE,
            "{b}: cycle models diverge {:.1}% (event {event_cycles}, analytic {analytic_cycles})",
            rel * 100.0
        );
    }
}

#[test]
fn event_backend_attributes_the_right_bottleneck() {
    let arch = ArchConfig::isca_45nm();
    let energy = FusionEnergy::isca_45nm();
    let opts = SimOptions::default();

    // RNN at batch 1 streams its whole weight matrix per input: the
    // timeline must be dominated by the array starving on bandwidth.
    let rnn = compile(&Benchmark::Rnn.model(), &arch, 1).expect("compiles");
    for layer in &rnn.layers {
        let perf = EventBackend.evaluate_layer(layer, &arch, &energy, &opts);
        assert!(
            perf.stalls.bandwidth_starved > perf.stalls.compute_starved,
            "{}: {:?}",
            layer.name,
            perf.stalls
        );
    }

    // Cifar-10's big middle convolutions at batch 16 are compute-bound:
    // the DMA engine idles while the array grinds.
    let cifar = compile(&Benchmark::Cifar10.model(), &arch, 16).expect("compiles");
    let conv4 = cifar.layers.iter().find(|l| l.name == "conv4").expect("conv4");
    let perf = EventBackend.evaluate_layer(conv4, &arch, &energy, &opts);
    assert!(
        perf.stalls.compute_starved > perf.stalls.bandwidth_starved,
        "conv4: {:?}",
        perf.stalls
    );
}

#[test]
fn event_occupancy_respects_double_buffered_capacity() {
    // The compiler sizes tiles so two of them (double buffering) fit the
    // input and weight scratchpads; the event backend's measured highwater
    // marks must respect that on *every* layer of every network — residual
    // groups included, since `choose_tiling` reserves IBUF headroom for
    // their second input stream (the fix for the former
    // residual-IBUF-overshoot finding; see DESIGN.md).
    let arch = ArchConfig::isca_45nm();
    let energy = FusionEnergy::isca_45nm();
    let opts = SimOptions::default();
    use bitfusion::isa::Scratchpad;
    for b in Benchmark::ALL {
        let plan = compile(&b.model(), &arch, 16).expect("compiles");
        for layer in &plan.layers {
            let perf = EventBackend.evaluate_layer(layer, &arch, &energy, &opts);
            let occ = perf.occupancy;
            assert!(occ.bits(Scratchpad::Wbuf) > 0, "{b}/{}", layer.name);
            assert!(
                occ.bits(Scratchpad::Ibuf) <= 8 * arch.ibuf_bytes as u64,
                "{b}/{}: IBUF highwater {} bits",
                layer.name,
                occ.bits(Scratchpad::Ibuf)
            );
            assert!(
                occ.bits(Scratchpad::Wbuf) <= 8 * arch.wbuf_bytes as u64,
                "{b}/{}: WBUF highwater {} bits",
                layer.name,
                occ.bits(Scratchpad::Wbuf)
            );
        }
    }
}
