//! # bitfusion
//!
//! A from-scratch reproduction of **Bit Fusion: Bit-Level Dynamically
//! Composable Architecture for Accelerating Deep Neural Networks**
//! (Sharma, Park, Suda, Lai, Chau, Chandra, Esmaeilzadeh — ISCA 2018).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — BitBricks, Fusion Units, and the functional systolic array;
//! * [`isa`] — the Fusion-ISA (Table I): encoding, assembly, execution
//!   semantics;
//! * [`dnn`] — the quantized DNN model IR and the eight-benchmark zoo;
//! * [`compiler`] — lowering from layers to instruction blocks with loop
//!   tiling/ordering and layer fusion;
//! * [`sim`] — the cycle-level performance simulator;
//! * [`energy`] — area/power/energy models and technology scaling;
//! * [`baselines`] — Eyeriss, Stripes, and GPU comparison models;
//! * [`service`] — the [`Session`](service::Session) facade, the typed
//!   request/response protocol, and the JSON-lines `serve` loop every
//!   entry point (CLI, benches, tests) goes through.
//!
//! See `README.md` for a workspace tour, the quickstart, and how to run the
//! test tiers and paper-figure benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use bitfusion_baselines as baselines;
pub use bitfusion_compiler as compiler;
pub use bitfusion_core as core;
pub use bitfusion_dnn as dnn;
pub use bitfusion_energy as energy;
pub use bitfusion_isa as isa;
pub use bitfusion_service as service;
pub use bitfusion_sim as sim;
