//! `bitfusion-cli` — drive the Bit Fusion reproduction from the command
//! line.
//!
//! This binary is a thin adapter over the service layer: every subcommand
//! parses argv into a typed [`Request`], hands it to a [`Session`], and
//! prints either the human-readable rendering or (with `--json`) the
//! response's single-line wire form. `serve` runs the long-running
//! JSON-lines loop over stdin/stdout with the same session machinery, so
//! one-shot `--json` output and serve responses are byte-identical.
//!
//! ```text
//! bitfusion-cli list
//! bitfusion-cli report cifar-10 --batch 16 --bandwidth 256 --json
//! bitfusion-cli compare alexnet
//! bitfusion-cli asm lstm --layer lstm1
//! bitfusion-cli sweep rnn --batch
//! bitfusion-cli sweep vgg-7 --bandwidth
//! bitfusion-cli dse --rows 16,32 --cols 8,16 --bandwidth 64,128,256 --json
//! echo '{"cmd":"report","benchmark":"lstm"}' | bitfusion-cli serve
//! bitfusion-cli serve --unix /tmp/bitfusion.sock &
//! bitfusion-cli client --unix /tmp/bitfusion.sock report lstm --batch 4
//! ```

use std::env;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use bitfusion::dnn::{export_model, parse_model, Model, QuantSpec};
use bitfusion::energy::TechNode;
use bitfusion::service::protocol::{
    quant_spec_from_json, ArchPreset, BackendChoice, DseParams, ModelSource, SweepAxis,
};
use bitfusion::service::net::{self, NetConfig, NetListener};
use bitfusion::service::session::find_model;
use bitfusion::service::{render, serve, Request, Response, Session};
use bitfusion::sim::SimOptions;

fn usage() -> &'static str {
    "bitfusion-cli — Bit Fusion (ISCA 2018) reproduction driver

USAGE:
  bitfusion-cli list     [--json]
  bitfusion-cli report   <benchmark | --model FILE> [--batch N] [--bandwidth BITS]
                         [--arch 45nm|16nm|stripes] [--backend analytic|event] [--quant SPEC]
                         [--json] [calibration]
  bitfusion-cli compare  <benchmark | --model FILE> [--batch N] [--backend analytic|event]
                         [--quant SPEC] [--json] [calibration]
  bitfusion-cli asm      <benchmark | --model FILE> [--layer NAME] [--batch N]
                         [--arch 45nm|16nm|stripes] [--json]
  bitfusion-cli sweep    <benchmark | --model FILE> (--batch | --bandwidth)
                         [--backend analytic|event] [--quant SPEC] [--cache-dir DIR]
                         [--json] [calibration]
  bitfusion-cli quantize <benchmark | --model FILE> [--quant SPEC] [--json]
  bitfusion-cli dse      [--rows LIST] [--cols LIST] [--ibuf-kb LIST] [--wbuf-kb LIST]
                         [--obuf-kb LIST] [--bandwidth LIST] [--batch LIST]
                         [--quant SPEC,SPEC] [--networks all|name,name] [--model FILE]...
                         [--workers N] [--backend analytic|event] [--cache-dir DIR]
                         [--resume] [--json] [calibration]
  bitfusion-cli export-model <benchmark|attention-block|depthwise-net>
  bitfusion-cli serve    [--listen ADDR | --unix PATH] [--workers N] [--cache-capacity N]
                         [--max-queue N] [--idle-timeout SECS] [--cache-dir DIR]
                         [--backend analytic|event] [calibration]
  bitfusion-cli client   (--connect ADDR | --unix PATH) [--keep-alive]
                         [REQUEST-JSON | SUBCOMMAND ARGS...]

external models (`bitfusion-model/1` JSON documents):
  `--model FILE` simulates a model file instead of a zoo benchmark; the
  simulating subcommands take a benchmark name or --model, never both.
  `dse --model` may repeat to add external networks to the explored set
  (combine with `--networks` to keep zoo networks too). `export-model`
  prints a zoo network — or the attention-block / depthwise-net example —
  as a model document to edit and feed back through --model.

quantization SPEC (per-layer bitwidth policies, applied over the paper's
Table II assignment):
  paper | uniform1|2|4|8|16 | a clause list like default=4/1,conv=2/2,layer:fc8=8/8
  | a path to a .json spec file ({\"preset\":\"uniform8\"} or
  {\"default\":\"4/1\",\"kinds\":[{\"kind\":\"conv\",\"precision\":\"2/2\"}],...}).
  `dse --quant` takes a comma list of presets/files and explores them as an
  axis, reporting per-network speedups vs uniform8.

calibration (threaded through the session's SimOptions):
  --systolic-efficiency F   fraction of peak systolic throughput (default 0.85)
  --dram-efficiency F       fraction of peak DRAM bandwidth (default 0.70)
  --node 45nm|16nm|65nm     technology node energies are reported at (default 45nm)

`--json` prints the response as one line of JSON — the same bytes `serve`
writes for the equivalent request. `serve` reads one JSON request per stdin
line ({\"cmd\":\"report\",\"benchmark\":\"lstm\",...}) and writes one
response per stdout line, in request order, dispatching concurrently.

persistent cache: `--cache-dir DIR` (on serve, dse, sweep) backs the
in-memory caches with a disk tier: compiled plans, layer results, and dse
checkpoints persist across restarts, so a warm directory answers without
recompiling — responses stay byte-identical regardless of which tier
serves them. The directory is single-writer (a lock file guards it; a
second process gets a diagnostic naming the lock). Corrupt entries are
quarantined and recomputed, never an error. `dse --resume` additionally
checkpoints each completed design point and, after an interruption, skips
the finished points while reproducing the exact frontier bytes.

network serve: `serve --listen 127.0.0.1:7040` or `serve --unix PATH` runs
a concurrent server instead of the stdin loop — thread per connection, one
shared cache, identical in-flight requests coalesced to one evaluation, a
bounded admission queue (`--max-queue`, default 64) that answers overflow
with an error response, and an idle-connection timeout (`--idle-timeout`
seconds, default 300, 0 disables). `{\"cmd\":\"stats\"}` reports live
counters; `{\"cmd\":\"shutdown\"}` (unix socket only) or SIGINT drains and
exits. `client` sends one request to a running server and prints the
response: give it a raw JSON request line, a normal subcommand spelling
(e.g. `client --unix P report lstm --json`), or pipe the request on stdin.
`client --keep-alive` pipelines instead: it holds one connection open and
sends every stdin line as a request, printing one response line per
request in order — same bytes as one-shot clients, without the
per-request reconnect.

BENCHMARKS:
  alexnet cifar-10 lstm lenet-5 resnet-18 rnn svhn vgg-7 (case-insensitive)"
}

/// A usage error: which subcommand, which flag, what went wrong.
#[derive(Debug)]
struct UsageError {
    subcommand: String,
    message: String,
}

impl UsageError {
    fn new(subcommand: &str, message: impl Into<String>) -> Self {
        UsageError {
            subcommand: subcommand.to_string(),
            message: message.into(),
        }
    }
}

/// Cursor over argv with subcommand-aware error messages.
struct Flags<'a> {
    subcommand: &'a str,
    argv: &'a [String],
    pos: usize,
}

impl<'a> Flags<'a> {
    fn new(subcommand: &'a str, argv: &'a [String]) -> Self {
        Flags {
            subcommand,
            argv,
            pos: 0,
        }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.argv.get(self.pos)?;
        self.pos += 1;
        Some(arg)
    }

    fn err(&self, message: impl Into<String>) -> UsageError {
        UsageError::new(self.subcommand, message)
    }

    /// The value following `flag`, or an error naming flag + subcommand.
    fn value(&mut self, flag: &str) -> Result<&'a str, UsageError> {
        // A following token that is itself a flag is not a value.
        match self.argv.get(self.pos) {
            Some(v) if !v.starts_with("--") => {
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err(format!("{flag} needs a value"))),
        }
    }

    /// Parses `flag`'s value, or an error naming flag, value, and
    /// subcommand.
    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, UsageError> {
        let v = self.value(flag)?;
        v.parse()
            .map_err(|_| self.err(format!("{flag}: invalid value `{v}`")))
    }

    /// Parses `flag`'s comma-separated list value.
    fn list<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Vec<T>, UsageError> {
        let v = self.value(flag)?;
        let items: Result<Vec<T>, _> = v.split(',').map(str::parse).collect();
        match items {
            Ok(items) if !items.is_empty() => Ok(items),
            _ => Err(self.err(format!("{flag} needs a comma-separated list, got `{v}`"))),
        }
    }

    fn unknown(&self, flag: &str) -> UsageError {
        self.err(format!("unknown flag `{flag}`"))
    }

    /// Resolves one `--quant` value to its canonical compact spelling: a
    /// preset/clause-list spelling parsed directly, or a `.json` spec file
    /// read from disk.
    fn quant_value(&mut self, value: &str) -> Result<String, UsageError> {
        let spec = if value.ends_with(".json") {
            let text = std::fs::read_to_string(value)
                .map_err(|e| self.err(format!("--quant: cannot read `{value}`: {e}")))?;
            let doc = bitfusion::service::json::parse(&text)
                .map_err(|e| self.err(format!("--quant: `{value}` is not valid JSON: {e}")))?;
            quant_spec_from_json(&doc).map_err(|e| self.err(format!("--quant `{value}`: {e}")))?
        } else {
            QuantSpec::parse(value).map_err(|e| self.err(format!("--quant: {e}")))?
        };
        Ok(spec.to_string())
    }

    /// Reads `--model`'s file and parses it as a `bitfusion-model/1`
    /// document, with the path in every diagnostic.
    fn model_value(&mut self) -> Result<Model, UsageError> {
        let path = self.value("--model")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| self.err(format!("--model: cannot read `{path}`: {e}")))?;
        parse_model(&text).map_err(|e| self.err(format!("--model `{path}`: {e}")))
    }
}

/// Everything a parsed invocation needs to run.
#[derive(Debug)]
struct Invocation {
    mode: Mode,
    json: bool,
    options: SimOptions,
    /// `--backend`: a per-request override for one-shot commands, the
    /// session default for `serve`.
    backend: Option<BackendChoice>,
    /// `--cache-dir`: back the session's caches with a persistent disk
    /// tier (serve, dse, sweep).
    cache_dir: Option<String>,
}

// One Mode lives per process; the Request-sized variant is not worth a Box.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Mode {
    OneShot(Request),
    ExportModel(String),
    Serve {
        workers: usize,
        cache_capacity: Option<usize>,
        listen: Option<String>,
        unix: Option<String>,
        max_queue: usize,
        /// `--idle-timeout` in seconds; `0` disables. Only meaningful
        /// with `--listen`/`--unix` (the stdin loop reads until EOF).
        idle_timeout: u64,
    },
    Client {
        connect: Option<String>,
        unix: Option<String>,
        payload: ClientPayload,
    },
}

/// What `client` sends: a raw request line, a parsed subcommand, or
/// whatever stdin provides.
#[derive(Debug)]
enum ClientPayload {
    /// A raw `{"cmd":...}` line, forwarded verbatim; the response prints
    /// verbatim too.
    Raw(String),
    /// A normal subcommand spelling, rendered like the one-shot command
    /// would be (`--json` for wire bytes).
    Request { request: Box<Request>, json: bool },
    /// Read one request line from stdin, print the response verbatim.
    Stdin,
    /// `--keep-alive`: hold one connection open and pipeline every stdin
    /// line as a request, one response line per request, in order.
    Pipeline,
}

/// Tries to consume one shared flag (`--json`, `--backend`, calibration
/// knobs). Returns whether the flag was recognized.
#[allow(clippy::too_many_arguments)]
fn shared_flag(
    flags: &mut Flags<'_>,
    arg: &str,
    json: &mut bool,
    backend: &mut Option<BackendChoice>,
    options: &mut SimOptions,
) -> Result<bool, UsageError> {
    match arg {
        "--json" => *json = true,
        "--backend" => {
            let v = flags.value("--backend")?;
            *backend = Some(BackendChoice::parse(v).map_err(|e| flags.err(e))?);
        }
        "--systolic-efficiency" => {
            let v: f64 = flags.parse("--systolic-efficiency")?;
            if !(v > 0.0 && v <= 1.0) {
                return Err(flags.err(format!(
                    "--systolic-efficiency must be in (0, 1], got `{v}`"
                )));
            }
            options.systolic_efficiency = v;
        }
        "--dram-efficiency" => {
            let v: f64 = flags.parse("--dram-efficiency")?;
            if !(v > 0.0 && v <= 1.0) {
                return Err(flags.err(format!("--dram-efficiency must be in (0, 1], got `{v}`")));
            }
            options.dram_efficiency = v;
        }
        "--node" => {
            options.node = match flags.value("--node")? {
                "45nm" => TechNode::Nm45,
                "16nm" => TechNode::Nm16,
                "65nm" => TechNode::Nm65,
                other => {
                    return Err(flags.err(format!("--node: unknown node `{other}` (45nm|16nm|65nm)")))
                }
            };
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses `client`'s argv: extracts the target address, treats everything
/// else as the payload — a raw JSON request or a nested subcommand
/// spelling (parsed through [`parse_invocation`] so it accepts exactly
/// the one-shot syntax).
fn parse_client(rest: &[String]) -> Result<Invocation, UsageError> {
    let mut flags = Flags::new("client", rest);
    let mut connect: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut keep_alive = false;
    let mut payload_args: Vec<String> = Vec::new();
    while let Some(arg) = flags.next() {
        match arg {
            "--connect" => connect = Some(flags.value("--connect")?.to_string()),
            "--unix" => unix = Some(flags.value("--unix")?.to_string()),
            "--keep-alive" => keep_alive = true,
            // Everything else — flags included — belongs to the nested
            // subcommand spelling.
            other => payload_args.push(other.to_string()),
        }
    }
    if connect.is_some() == unix.is_some() {
        return Err(UsageError::new(
            "client",
            "`client` needs exactly one of --connect ADDR or --unix PATH",
        ));
    }
    if keep_alive && !payload_args.is_empty() {
        return Err(UsageError::new(
            "client",
            "--keep-alive reads its requests from stdin; drop the inline request",
        ));
    }
    let payload = match payload_args.as_slice() {
        [] if keep_alive => ClientPayload::Pipeline,
        [] => ClientPayload::Stdin,
        [raw] if raw.trim_start().starts_with('{') => ClientPayload::Raw(raw.clone()),
        _ => {
            let inner = parse_invocation(&payload_args)?;
            let Mode::OneShot(request) = inner.mode else {
                return Err(UsageError::new(
                    "client",
                    format!(
                        "`client` sends one-shot requests; `{}` is not one",
                        payload_args[0]
                    ),
                ));
            };
            if inner.options != SimOptions::default() {
                return Err(UsageError::new(
                    "client",
                    "calibration flags configure the server's session; \
                     set them on `serve`, not `client`",
                ));
            }
            ClientPayload::Request {
                request: Box::new(request),
                json: inner.json,
            }
        }
    };
    Ok(Invocation {
        mode: Mode::Client {
            connect,
            unix,
            payload,
        },
        json: false,
        options: SimOptions::default(),
        backend: None,
        cache_dir: None,
    })
}

fn parse_invocation(argv: &[String]) -> Result<Invocation, UsageError> {
    let Some(subcommand) = argv.first() else {
        return Err(UsageError::new("", usage()));
    };
    let subcommand = subcommand.as_str();
    let rest = &argv[1..];
    if subcommand == "client" {
        return parse_client(rest);
    }
    let mut flags = Flags::new(subcommand, rest);
    let mut json = false;
    let mut backend: Option<BackendChoice> = None;
    let mut options = SimOptions::default();
    let mut positional: Vec<&str> = Vec::new();

    // Subcommand-specific state.
    let mut batch: Option<u64> = None;
    let mut bandwidth: Option<u32> = None;
    let mut arch = ArchPreset::default();
    let mut layer: Option<String> = None;
    let mut sweep_axis: Option<SweepAxis> = None;
    let mut quant: Option<String> = None;
    let mut model: Option<Model> = None;
    let mut dse = DseParams::default();
    let mut workers: usize = 0;
    let mut cache_capacity: Option<usize> = None;
    let mut listen: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut max_queue: usize = 64;
    let mut idle_timeout: u64 = 300;
    let mut net_only_flag: Option<&str> = None;
    let mut cache_dir: Option<String> = None;

    while let Some(arg) = flags.next() {
        if !arg.starts_with("--") {
            positional.push(arg);
            continue;
        }
        if shared_flag(&mut flags, arg, &mut json, &mut backend, &mut options)? {
            let calibration = matches!(
                arg,
                "--systolic-efficiency" | "--dram-efficiency" | "--node"
            );
            let takes_backend = matches!(
                subcommand,
                "report" | "compare" | "sweep" | "dse" | "serve"
            );
            if arg == "--backend" && !takes_backend {
                return Err(flags.err(format!("`{subcommand}` does not take --backend")));
            }
            if calibration && !takes_backend {
                return Err(flags.err(format!("`{subcommand}` does not take {arg}")));
            }
            if arg == "--json" && subcommand == "serve" {
                return Err(flags.err("`serve` always speaks JSON; drop --json"));
            }
            continue;
        }
        match (subcommand, arg) {
            ("report", "--batch") | ("compare", "--batch") | ("asm", "--batch") => {
                batch = Some(flags.parse("--batch")?);
            }
            ("report", "--bandwidth") => bandwidth = Some(flags.parse("--bandwidth")?),
            ("report", "--arch") | ("asm", "--arch") => {
                let v = flags.value("--arch")?;
                arch = ArchPreset::parse(v).map_err(|e| flags.err(e))?;
            }
            ("asm", "--layer") => layer = Some(flags.value("--layer")?.to_string()),
            ("sweep", "--batch") => sweep_axis = Some(SweepAxis::Batch),
            ("sweep", "--bandwidth") => sweep_axis = Some(SweepAxis::Bandwidth),
            ("report", "--quant") | ("compare", "--quant") | ("sweep", "--quant")
            | ("quantize", "--quant") => {
                let v = flags.value("--quant")?.to_string();
                quant = Some(flags.quant_value(&v)?);
            }
            ("dse", "--quant") => {
                let v = flags.value("--quant")?.to_string();
                let mut quants = Vec::new();
                for entry in v.split(',') {
                    if entry.contains('=') {
                        return Err(flags.err(format!(
                            "--quant: clause-list specs (`{entry}`) are ambiguous in a comma \
                             list; put the spec in a .json file instead"
                        )));
                    }
                    quants.push(flags.quant_value(entry.trim())?);
                }
                // split(',') always yields at least one entry, and an empty
                // entry already failed inside quant_value.
                dse.quants = quants;
            }
            ("report", "--model") | ("compare", "--model") | ("asm", "--model")
            | ("sweep", "--model") | ("quantize", "--model") => {
                if model.is_some() {
                    return Err(flags.err("--model given twice"));
                }
                model = Some(flags.model_value()?);
            }
            ("dse", "--model") => dse.models.push(flags.model_value()?),
            ("dse", "--rows") => dse.rows = flags.list("--rows")?,
            ("dse", "--cols") => dse.cols = flags.list("--cols")?,
            ("dse", "--ibuf-kb") => dse.ibuf_kb = flags.list("--ibuf-kb")?,
            ("dse", "--wbuf-kb") => dse.wbuf_kb = flags.list("--wbuf-kb")?,
            ("dse", "--obuf-kb") => dse.obuf_kb = flags.list("--obuf-kb")?,
            ("dse", "--bandwidth") => dse.bandwidth = flags.list("--bandwidth")?,
            ("dse", "--batch") => dse.batches = flags.list("--batch")?,
            ("dse", "--networks") => {
                let v = flags.value("--networks")?;
                dse.networks = if v == "all" {
                    None
                } else {
                    Some(v.split(',').map(str::to_string).collect())
                };
            }
            ("dse", "--workers") => dse.workers = flags.parse("--workers")?,
            ("serve", "--workers") => workers = flags.parse("--workers")?,
            ("serve", "--cache-capacity") => {
                cache_capacity = Some(flags.parse("--cache-capacity")?)
            }
            ("serve", "--listen") => listen = Some(flags.value("--listen")?.to_string()),
            ("serve", "--unix") => unix = Some(flags.value("--unix")?.to_string()),
            ("serve", "--max-queue") => {
                max_queue = flags.parse("--max-queue")?;
                net_only_flag.get_or_insert("--max-queue");
            }
            ("serve", "--idle-timeout") => {
                idle_timeout = flags.parse("--idle-timeout")?;
                net_only_flag.get_or_insert("--idle-timeout");
            }
            ("serve", "--cache-dir") | ("dse", "--cache-dir") | ("sweep", "--cache-dir") => {
                cache_dir = Some(flags.value("--cache-dir")?.to_string());
            }
            ("dse", "--resume") => dse.resume = true,
            _ => return Err(flags.unknown(arg)),
        }
    }

    let benchmark = |positional: &[&str]| -> Result<String, UsageError> {
        match positional {
            [name] => Ok(name.to_string()),
            [] => Err(UsageError::new(
                subcommand,
                format!("`{subcommand}` needs a benchmark name"),
            )),
            more => Err(UsageError::new(
                subcommand,
                format!("unexpected argument `{}`", more[1]),
            )),
        }
    };
    // The simulating subcommands name their workload either way — a zoo
    // benchmark positional XOR an external `--model` file.
    let source = |positional: &[&str], model: Option<Model>| -> Result<ModelSource, UsageError> {
        match (positional, model) {
            ([name], None) => Ok(ModelSource::zoo(*name)),
            ([], Some(m)) => Ok(ModelSource::External(m)),
            ([_], Some(_)) => Err(UsageError::new(
                subcommand,
                "give either a benchmark name or --model, not both",
            )),
            ([], None) => Err(UsageError::new(
                subcommand,
                format!("`{subcommand}` needs a benchmark name or --model FILE"),
            )),
            (more, _) => Err(UsageError::new(
                subcommand,
                format!("unexpected argument `{}`", more[1]),
            )),
        }
    };
    let no_positional = |positional: &[&str]| -> Result<(), UsageError> {
        match positional.first() {
            None => Ok(()),
            Some(extra) => Err(UsageError::new(
                subcommand,
                format!("unexpected argument `{extra}`"),
            )),
        }
    };

    let mode = match subcommand {
        "list" => {
            no_positional(&positional)?;
            Mode::OneShot(Request::List)
        }
        "report" => Mode::OneShot(Request::Report {
            model: source(&positional, model)?,
            batch: batch.unwrap_or(16),
            bandwidth,
            arch,
            backend,
            quant,
        }),
        "compare" => Mode::OneShot(Request::Compare {
            model: source(&positional, model)?,
            batch: batch.unwrap_or(16),
            backend,
            quant,
        }),
        "asm" => Mode::OneShot(Request::Asm {
            model: source(&positional, model)?,
            batch: batch.unwrap_or(16),
            arch,
            layer,
        }),
        "sweep" => Mode::OneShot(Request::Sweep {
            model: source(&positional, model)?,
            axis: sweep_axis.ok_or_else(|| {
                UsageError::new(subcommand, "`sweep` needs an axis: --batch or --bandwidth")
            })?,
            backend,
            quant,
        }),
        "quantize" => Mode::OneShot(Request::Quantize {
            model: source(&positional, model)?,
            quant,
        }),
        "export-model" => Mode::ExportModel(benchmark(&positional)?),
        "dse" => {
            no_positional(&positional)?;
            if dse.resume && cache_dir.is_none() {
                return Err(UsageError::new(
                    subcommand,
                    "--resume needs --cache-dir DIR (the checkpoints live there)",
                ));
            }
            dse.backend = backend;
            Mode::OneShot(Request::Dse(dse))
        }
        "serve" => {
            no_positional(&positional)?;
            if listen.is_some() && unix.is_some() {
                return Err(UsageError::new(
                    subcommand,
                    "give --listen or --unix, not both",
                ));
            }
            if let (None, None, Some(flag)) = (&listen, &unix, net_only_flag) {
                return Err(UsageError::new(
                    subcommand,
                    format!("{flag} needs --listen or --unix (stdin serve reads until EOF)"),
                ));
            }
            Mode::Serve {
                workers,
                cache_capacity,
                listen,
                unix,
                max_queue,
                idle_timeout,
            }
        }
        other => {
            return Err(UsageError::new(
                other,
                format!("unknown command `{other}`"),
            ))
        }
    };
    Ok(Invocation {
        mode,
        json,
        options,
        backend,
        cache_dir,
    })
}

/// The final two-tier cache summary every serve flavour prints on exit.
/// An untouched tier has no hit rate — print `n/a`, not `0.0%`.
fn print_cache_summary(session: &Session, responses: u64, errors: u64) {
    let rate = |r: Option<f64>| match r {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "n/a".to_string(),
    };
    let stats = session.cache_stats();
    let layers = session.layer_cache_stats();
    eprintln!(
        "serve: {} responses ({} errors); artifact cache: {} hits, {} misses, {} evictions, {}/{} resident, {} hit rate; layer cache: {} hits, {} misses, {}/{} resident, {} hit rate",
        responses,
        errors,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.len,
        stats.capacity,
        rate(stats.hit_rate()),
        layers.hits,
        layers.misses,
        layers.len,
        layers.capacity,
        rate(layers.hit_rate())
    );
    if let Some(disk) = session.store_stats() {
        eprintln!(
            "serve: disk store: {} plan hits, {} plan misses, {} layer hits, {} layer misses, {} writes, {} corrupt",
            disk.plan_hits,
            disk.plan_misses,
            disk.layer_hits,
            disk.layer_misses,
            disk.writes,
            disk.corrupt
        );
    }
}

/// The stop flag SIGINT flips, shared with the running server. A
/// `OnceLock` because a signal handler cannot capture state: it must
/// reach the flag through a process global.
static SIGINT_STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

/// Routes SIGINT (ctrl-c) to `stop` so the server drains instead of
/// dying mid-request. Raw `signal(2)` FFI — the store below is
/// async-signal-safe, and the default disposition is restored semantics
/// we don't need (a second ctrl-c during a long drain still kills via
/// SIGQUIT/SIGTERM).
#[cfg(unix)]
fn install_sigint(stop: Arc<AtomicBool>) {
    extern "C" fn on_sigint(_: i32) {
        if let Some(stop) = SIGINT_STOP.get() {
            stop.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let _ = SIGINT_STOP.set(stop);
    const SIGINT: i32 = 2;
    let handler = on_sigint as extern "C" fn(i32);
    unsafe {
        signal(SIGINT, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint(_stop: Arc<AtomicBool>) {}

/// Runs the network server on the parsed listen target; returns the exit
/// code (never a usage error — the flags were validated already).
fn run_net_serve(
    session: &Session,
    listen: Option<&str>,
    unix: Option<&str>,
    max_queue: usize,
    idle_timeout: u64,
    workers: usize,
) -> ExitCode {
    let bound = match (listen, unix) {
        (Some(addr), None) => NetListener::bind_tcp(addr),
        #[cfg(unix)]
        (None, Some(path)) => NetListener::bind_unix(path),
        #[cfg(not(unix))]
        (None, Some(_)) => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        )),
        _ => unreachable!("parse_invocation enforces --listen XOR --unix"),
    };
    let listener = match bound {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = NetConfig {
        workers,
        max_queue,
        idle_timeout: (idle_timeout > 0).then(|| Duration::from_secs(idle_timeout)),
        // Only a local unix-socket client may stop the server.
        allow_shutdown: unix.is_some(),
        ..NetConfig::default()
    };
    install_sigint(Arc::clone(&config.stop));
    eprintln!("serve: listening on {}", listener.local_display());
    let result = net::run(session, &listener, &config);
    // Remove the socket file so the next start binds cleanly; the
    // listener must drop first on some platforms, but unlinking while
    // open is fine on unix.
    if let Some(path) = unix {
        let _ = std::fs::remove_file(path);
    }
    match result {
        Ok(summary) => {
            print_cache_summary(session, summary.responses, summary.errors);
            eprintln!(
                "serve: {} connections, {} coalesced requests",
                summary.connections, summary.coalesced
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `client --keep-alive`: holds one connection open and sends every stdin
/// line as a request, printing one response line per request, in order.
/// The response bytes are identical to what the same requests would get
/// from separate one-shot connections — the server answers per line and
/// does not care about connection reuse — so scripted callers can batch
/// without re-dialing.
fn run_client_pipeline(connect: Option<&str>, unix: Option<&str>) -> ExitCode {
    // Lockstep request/response over one connection: write a line, read a
    // line. Responses come back in request order, so interleaving with
    // stdin is safe and the output lines correlate 1:1 with input lines.
    let exchange_all = |mut writer: Box<dyn Write>,
                        reader: Box<dyn std::io::Read>|
     -> std::io::Result<u64> {
        let mut responses = BufReader::new(reader);
        let mut errors = 0u64;
        for line in std::io::stdin().lock().lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut reply = String::new();
            if responses.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-stream",
                ));
            }
            let reply = reply.trim_end();
            if reply.starts_with(r#"{"reply":"error""#) {
                errors += 1;
            }
            println!("{reply}");
        }
        Ok(errors)
    };
    let result = match (connect, unix) {
        (Some(addr), None) => std::net::TcpStream::connect(addr).and_then(|s| {
            let reader = s.try_clone()?;
            exchange_all(Box::new(s), Box::new(reader))
        }),
        #[cfg(unix)]
        (None, Some(path)) => std::os::unix::net::UnixStream::connect(path).and_then(|s| {
            let reader = s.try_clone()?;
            exchange_all(Box::new(s), Box::new(reader))
        }),
        #[cfg(not(unix))]
        (None, Some(_)) => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        )),
        _ => unreachable!("parse_client enforces --connect XOR --unix"),
    };
    match result {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Connects to a server, sends one request line, prints the response.
fn run_client(
    connect: Option<&str>,
    unix: Option<&str>,
    payload: &ClientPayload,
) -> ExitCode {
    if matches!(payload, ClientPayload::Pipeline) {
        return run_client_pipeline(connect, unix);
    }
    let line = match payload {
        ClientPayload::Pipeline => unreachable!("handled above"),
        ClientPayload::Raw(raw) => raw.trim().to_string(),
        ClientPayload::Request { request, .. } => request.encode(),
        ClientPayload::Stdin => {
            let mut line = String::new();
            match std::io::stdin().lock().read_line(&mut line) {
                Ok(0) => {
                    eprintln!("client: no request on stdin");
                    return ExitCode::FAILURE;
                }
                Ok(_) => line.trim().to_string(),
                Err(e) => {
                    eprintln!("client: cannot read stdin: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let exchange = || -> std::io::Result<String> {
        // One request, one response line: the tiny protocol needs no
        // transport abstraction here, just two stream flavours.
        let mut reply = String::new();
        match (connect, unix) {
            (Some(addr), None) => {
                let mut stream = std::net::TcpStream::connect(addr)?;
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
                stream.flush()?;
                BufReader::new(stream).read_line(&mut reply)?;
            }
            #[cfg(unix)]
            (None, Some(path)) => {
                let mut stream = std::os::unix::net::UnixStream::connect(path)?;
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
                stream.flush()?;
                BufReader::new(stream).read_line(&mut reply)?;
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "no usable target",
                ))
            }
        }
        if reply.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection without answering",
            ));
        }
        Ok(reply.trim_end().to_string())
    };
    let reply = match exchange() {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("client: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failed = reply.starts_with(r#"{"reply":"error""#);
    match payload {
        // Raw in, raw out: scripted callers correlate bytes.
        ClientPayload::Raw(_) | ClientPayload::Stdin | ClientPayload::Pipeline => {
            println!("{reply}")
        }
        ClientPayload::Request { json: true, .. } => println!("{reply}"),
        ClientPayload::Request { json: false, .. } => match Response::parse(&reply) {
            Ok(response) => {
                if failed {
                    eprintln!("{}", render(&response));
                } else {
                    println!("{}", render(&response));
                }
            }
            Err(e) => {
                eprintln!("client: unparseable response ({e}): {reply}");
                return ExitCode::FAILURE;
            }
        },
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run() -> Result<ExitCode, UsageError> {
    let argv: Vec<String> = env::args().skip(1).collect();
    let inv = parse_invocation(&argv)?;
    match inv.mode {
        Mode::Serve {
            workers,
            cache_capacity,
            listen,
            unix,
            max_queue,
            idle_timeout,
        } => {
            let mut session = Session::new()
                .with_options(inv.options)
                .with_backend(inv.backend.unwrap_or(BackendChoice::Analytic));
            if let Some(capacity) = cache_capacity {
                session = session.with_cache_capacity(capacity);
            }
            if let Some(dir) = &inv.cache_dir {
                session = match session.with_cache_dir(dir) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("serve: {e}");
                        return Ok(ExitCode::FAILURE);
                    }
                };
            }
            if listen.is_some() || unix.is_some() {
                return Ok(run_net_serve(
                    &session,
                    listen.as_deref(),
                    unix.as_deref(),
                    max_queue,
                    idle_timeout,
                    workers,
                ));
            }
            let stdout = std::io::stdout();
            let summary = match serve(
                &session,
                BufReader::new(std::io::stdin()),
                BufWriter::new(stdout.lock()),
                workers,
            ) {
                Ok(summary) => summary,
                // A dead client (EPIPE) or failed reader is a runtime
                // failure, not a usage error: no banner, exit 1.
                Err(e) => {
                    eprintln!("serve: I/O error: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            print_cache_summary(&session, summary.responses, summary.errors);
            Ok(ExitCode::SUCCESS)
        }
        Mode::Client {
            connect,
            unix,
            payload,
        } => Ok(run_client(connect.as_deref(), unix.as_deref(), &payload)),
        Mode::ExportModel(name) => match find_model(&name) {
            Ok(m) => {
                // A `bitfusion-model/1` document: already JSON, byte-stable,
                // and re-importable through `--model`.
                println!("{}", export_model(&m).encode());
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("export-model: {e}");
                Ok(ExitCode::FAILURE)
            }
        },
        Mode::OneShot(request) => {
            let mut session = Session::new().with_options(inv.options);
            if let Some(dir) = &inv.cache_dir {
                session = match session.with_cache_dir(dir) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("bitfusion-cli: {e}");
                        return Ok(ExitCode::FAILURE);
                    }
                };
            }
            let response = session.handle(&request);
            let failed = matches!(response, Response::Error { .. });
            if inv.json {
                println!("{}", response.encode());
            } else if failed {
                eprintln!("{}", render(&response));
            } else {
                println!("{}", render(&response));
            }
            Ok(if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            if e.subcommand.is_empty() {
                eprintln!("{}", e.message);
            } else {
                eprintln!("bitfusion-cli {}: {}\n\n{}", e.subcommand, e.message, usage());
            }
            // Usage errors exit 2, runtime failures exit 1 — scripts can
            // tell a typo from an infeasible configuration.
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn report_flags_build_the_request() {
        let inv = parse_invocation(&argv(&[
            "report", "lstm", "--batch", "4", "--bandwidth", "256", "--arch", "16nm",
            "--backend", "event", "--json",
        ]))
        .unwrap();
        assert!(inv.json);
        let Mode::OneShot(Request::Report {
            model,
            batch,
            bandwidth,
            arch,
            backend,
            quant,
        }) = inv.mode
        else {
            panic!("expected report");
        };
        assert_eq!(model, ModelSource::zoo("lstm"));
        assert_eq!(batch, 4);
        assert_eq!(bandwidth, Some(256));
        assert_eq!(arch, ArchPreset::Gpu16nm);
        assert_eq!(backend, Some(BackendChoice::Event));
        assert_eq!(quant, None);
    }

    #[test]
    fn quant_flags_canonicalize_and_validate() {
        let inv = parse_invocation(&argv(&["report", "lstm", "--quant", "default=8/8"])).unwrap();
        let Mode::OneShot(Request::Report { quant, .. }) = inv.mode else {
            panic!("expected report");
        };
        assert_eq!(quant.as_deref(), Some("uniform8"), "canonical spelling");

        let inv = parse_invocation(&argv(&["quantize", "svhn", "--quant", "uniform16"])).unwrap();
        let Mode::OneShot(Request::Quantize { model, quant }) = inv.mode else {
            panic!("expected quantize");
        };
        assert_eq!(model, ModelSource::zoo("svhn"));
        assert_eq!(quant.as_deref(), Some("uniform16"));

        let e = parse_invocation(&argv(&["report", "lstm", "--quant", "uniform9"])).unwrap_err();
        assert!(e.message.contains("uniform9"), "{}", e.message);

        // dse takes a comma list of presets/files...
        let inv = parse_invocation(&argv(&["dse", "--quant", "paper,uniform8"])).unwrap();
        let Mode::OneShot(Request::Dse(p)) = inv.mode else {
            panic!("expected dse");
        };
        assert_eq!(p.quants, vec!["paper".to_string(), "uniform8".to_string()]);
        // ...but rejects ambiguous inline clause lists.
        let e = parse_invocation(&argv(&["dse", "--quant", "default=4/1,conv=2/2"])).unwrap_err();
        assert!(e.message.contains(".json"), "{}", e.message);

        // quantize takes no backend/calibration flags.
        let e = parse_invocation(&argv(&["quantize", "lstm", "--backend", "event"])).unwrap_err();
        assert!(e.message.contains("--backend"), "{}", e.message);
    }

    #[test]
    fn errors_name_flag_and_subcommand() {
        let e = parse_invocation(&argv(&["report", "lstm", "--bogus"])).unwrap_err();
        assert_eq!(e.subcommand, "report");
        assert!(e.message.contains("--bogus"), "{}", e.message);

        let e = parse_invocation(&argv(&["report", "lstm", "--batch"])).unwrap_err();
        assert!(e.message.contains("--batch needs a value"), "{}", e.message);

        let e = parse_invocation(&argv(&["report", "lstm", "--batch", "abc"])).unwrap_err();
        assert!(e.message.contains("--batch") && e.message.contains("abc"), "{}", e.message);

        let e = parse_invocation(&argv(&["sweep", "rnn"])).unwrap_err();
        assert!(e.message.contains("--batch or --bandwidth"), "{}", e.message);

        let e = parse_invocation(&argv(&["asm", "rnn", "--backend", "event"])).unwrap_err();
        assert!(e.message.contains("--backend"), "{}", e.message);

        let e = parse_invocation(&argv(&["frobnicate"])).unwrap_err();
        assert!(e.message.contains("frobnicate"), "{}", e.message);
    }

    #[test]
    fn calibration_knobs_thread_into_options() {
        let inv = parse_invocation(&argv(&[
            "report",
            "rnn",
            "--systolic-efficiency",
            "0.9",
            "--dram-efficiency",
            "0.5",
            "--node",
            "16nm",
        ]))
        .unwrap();
        assert_eq!(inv.options.systolic_efficiency, 0.9);
        assert_eq!(inv.options.dram_efficiency, 0.5);
        assert_eq!(inv.options.node, TechNode::Nm16);

        let e = parse_invocation(&argv(&["report", "rnn", "--systolic-efficiency", "1.5"]))
            .unwrap_err();
        assert!(e.message.contains("(0, 1]"), "{}", e.message);
    }

    #[test]
    fn sweep_axis_flags_are_valueless() {
        let inv = parse_invocation(&argv(&["sweep", "rnn", "--bandwidth"])).unwrap();
        let Mode::OneShot(Request::Sweep { axis, .. }) = inv.mode else {
            panic!("expected sweep");
        };
        assert_eq!(axis, SweepAxis::Bandwidth);
    }

    #[test]
    fn dse_lists_parse() {
        let inv = parse_invocation(&argv(&[
            "dse", "--rows", "16,32", "--bandwidth", "64,128", "--networks", "lstm,rnn",
            "--workers", "2", "--backend", "event",
        ]))
        .unwrap();
        let Mode::OneShot(Request::Dse(p)) = inv.mode else {
            panic!("expected dse");
        };
        assert_eq!(p.rows, vec![16, 32]);
        assert_eq!(p.bandwidth, vec![64, 128]);
        assert_eq!(p.networks, Some(vec!["lstm".to_string(), "rnn".to_string()]));
        assert_eq!(p.workers, 2);
        assert_eq!(p.backend, Some(BackendChoice::Event));
    }

    /// Writes a valid model document to a temp path for `--model` tests.
    fn temp_model(tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("bitfusion-cli-test-{tag}.json"));
        std::fs::write(
            &path,
            r#"{"format":"bitfusion-model/1","name":"tiny","layers":[{"name":"fc1","kind":"fc","in_features":64,"out_features":32,"precision":"4/1"}]}"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn model_flag_loads_an_external_model() {
        let path = temp_model("report");
        let inv =
            parse_invocation(&argv(&["report", "--model", path.to_str().unwrap()])).unwrap();
        let Mode::OneShot(Request::Report { model, .. }) = inv.mode else {
            panic!("expected report");
        };
        let ModelSource::External(m) = model else {
            panic!("expected an external model, got {model:?}");
        };
        assert_eq!(m.name, "tiny");
        assert_eq!(m.layers.len(), 1);

        // The workload is the benchmark positional XOR --model.
        let e = parse_invocation(&argv(&["report", "lstm", "--model", path.to_str().unwrap()]))
            .unwrap_err();
        assert!(e.message.contains("not both"), "{}", e.message);
        let e = parse_invocation(&argv(&["report"])).unwrap_err();
        assert!(e.message.contains("--model"), "{}", e.message);

        // Diagnostics carry the path: unreadable file, invalid document.
        let e = parse_invocation(&argv(&["report", "--model", "/nonexistent/m.json"]))
            .unwrap_err();
        assert!(e.message.contains("/nonexistent/m.json"), "{}", e.message);
        let bad = std::env::temp_dir().join("bitfusion-cli-test-bad.json");
        std::fs::write(&bad, r#"{"format":"bitfusion-model/1"}"#).unwrap();
        let e = parse_invocation(&argv(&["report", "--model", bad.to_str().unwrap()]))
            .unwrap_err();
        assert!(
            e.message.contains("model.name") && e.message.contains("bad.json"),
            "{}",
            e.message
        );
    }

    #[test]
    fn dse_model_flag_repeats() {
        let path = temp_model("dse");
        let p = path.to_str().unwrap();
        let inv =
            parse_invocation(&argv(&["dse", "--model", p, "--model", p, "--workers", "1"]))
                .unwrap();
        let Mode::OneShot(Request::Dse(params)) = inv.mode else {
            panic!("expected dse");
        };
        assert_eq!(params.models.len(), 2);
        assert_eq!(params.models[0].name, "tiny");
        assert_eq!(params.networks, None);
    }

    #[test]
    fn export_model_takes_one_name() {
        let inv = parse_invocation(&argv(&["export-model", "lstm"])).unwrap();
        let Mode::ExportModel(name) = inv.mode else {
            panic!("expected export-model, got {:?}", inv.mode);
        };
        assert_eq!(name, "lstm");
        let e = parse_invocation(&argv(&["export-model"])).unwrap_err();
        assert_eq!(e.subcommand, "export-model");
    }

    #[test]
    fn serve_parses_its_flags() {
        let inv = parse_invocation(&argv(&[
            "serve",
            "--workers",
            "3",
            "--cache-capacity",
            "64",
            "--dram-efficiency",
            "0.6",
        ]))
        .unwrap();
        let Mode::Serve {
            workers,
            cache_capacity,
            listen,
            unix,
            ..
        } = inv.mode
        else {
            panic!("expected serve");
        };
        assert_eq!(workers, 3);
        assert_eq!(cache_capacity, Some(64));
        assert_eq!(inv.options.dram_efficiency, 0.6);
        assert_eq!(listen, None);
        assert_eq!(unix, None);
    }

    #[test]
    fn serve_network_flags() {
        let inv = parse_invocation(&argv(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--max-queue",
            "8",
            "--idle-timeout",
            "30",
        ]))
        .unwrap();
        let Mode::Serve {
            listen,
            unix,
            max_queue,
            idle_timeout,
            ..
        } = inv.mode
        else {
            panic!("expected serve");
        };
        assert_eq!(listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(unix, None);
        assert_eq!(max_queue, 8);
        assert_eq!(idle_timeout, 30);

        // --listen XOR --unix.
        let e = parse_invocation(&argv(&[
            "serve", "--listen", "127.0.0.1:0", "--unix", "/tmp/x.sock",
        ]))
        .unwrap_err();
        assert!(e.message.contains("not both"), "{}", e.message);

        // Net-only knobs require a net listener; the stdin loop has no
        // idle connections or admission queue.
        let e = parse_invocation(&argv(&["serve", "--idle-timeout", "5"])).unwrap_err();
        assert!(e.message.contains("--idle-timeout"), "{}", e.message);
        let e = parse_invocation(&argv(&["serve", "--max-queue", "4"])).unwrap_err();
        assert!(e.message.contains("--max-queue"), "{}", e.message);
    }

    #[test]
    fn cache_dir_and_resume_flags_parse() {
        // serve/dse/sweep take --cache-dir; it lands on the invocation.
        let inv = parse_invocation(&argv(&["serve", "--cache-dir", "/tmp/bf-cache"])).unwrap();
        assert_eq!(inv.cache_dir.as_deref(), Some("/tmp/bf-cache"));
        let inv = parse_invocation(&argv(&["sweep", "rnn", "--batch", "--cache-dir", "/tmp/c"]))
            .unwrap();
        assert_eq!(inv.cache_dir.as_deref(), Some("/tmp/c"));

        // dse --resume rides on --cache-dir and sets the request flag.
        let inv = parse_invocation(&argv(&["dse", "--cache-dir", "/tmp/c", "--resume"])).unwrap();
        assert_eq!(inv.cache_dir.as_deref(), Some("/tmp/c"));
        let Mode::OneShot(Request::Dse(p)) = inv.mode else {
            panic!("expected dse");
        };
        assert!(p.resume);

        // --resume without a directory to checkpoint into is a usage error.
        let e = parse_invocation(&argv(&["dse", "--resume"])).unwrap_err();
        assert!(e.message.contains("--cache-dir"), "{}", e.message);

        // Other subcommands do not take --cache-dir.
        let e = parse_invocation(&argv(&["report", "lstm", "--cache-dir", "/tmp/c"]))
            .unwrap_err();
        assert!(e.message.contains("--cache-dir"), "{}", e.message);
    }

    #[test]
    fn keep_alive_client_parses() {
        let inv =
            parse_invocation(&argv(&["client", "--unix", "/tmp/s.sock", "--keep-alive"]))
                .unwrap();
        let Mode::Client { payload, .. } = inv.mode else {
            panic!("expected client");
        };
        assert!(matches!(payload, ClientPayload::Pipeline));

        // Keep-alive requests come from stdin, never inline.
        let e = parse_invocation(&argv(&[
            "client", "--unix", "/tmp/s.sock", "--keep-alive", "report", "lstm",
        ]))
        .unwrap_err();
        assert!(e.message.contains("stdin"), "{}", e.message);
    }

    #[test]
    fn client_parses_its_payload_forms() {
        // Nested subcommand spelling, with --json riding along.
        let inv = parse_invocation(&argv(&[
            "client", "--unix", "/tmp/s.sock", "report", "lstm", "--batch", "4", "--json",
        ]))
        .unwrap();
        let Mode::Client {
            connect,
            unix,
            payload,
        } = inv.mode
        else {
            panic!("expected client");
        };
        assert_eq!(connect, None);
        assert_eq!(unix.as_deref(), Some("/tmp/s.sock"));
        let ClientPayload::Request { request, json } = payload else {
            panic!("expected a parsed request, got {payload:?}");
        };
        assert!(json);
        assert!(matches!(*request, Request::Report { batch: 4, .. }));

        // Raw JSON positional.
        let inv = parse_invocation(&argv(&[
            "client",
            "--connect",
            "127.0.0.1:7040",
            r#"{"cmd":"stats"}"#,
        ]))
        .unwrap();
        let Mode::Client { payload, .. } = inv.mode else {
            panic!("expected client");
        };
        assert!(matches!(payload, ClientPayload::Raw(raw) if raw.contains("stats")));

        // No payload: read stdin.
        let inv =
            parse_invocation(&argv(&["client", "--connect", "127.0.0.1:7040"])).unwrap();
        let Mode::Client { payload, .. } = inv.mode else {
            panic!("expected client");
        };
        assert!(matches!(payload, ClientPayload::Stdin));

        // Exactly one target.
        let e = parse_invocation(&argv(&["client", "report", "lstm"])).unwrap_err();
        assert!(e.message.contains("--connect"), "{}", e.message);
        let e = parse_invocation(&argv(&[
            "client", "--connect", "a:1", "--unix", "/tmp/s", "report", "lstm",
        ]))
        .unwrap_err();
        assert!(e.message.contains("exactly one"), "{}", e.message);

        // The payload must be a one-shot subcommand...
        let e = parse_invocation(&argv(&["client", "--connect", "a:1", "serve"])).unwrap_err();
        assert!(e.message.contains("one-shot"), "{}", e.message);
        // ...and calibration is server-side.
        let e = parse_invocation(&argv(&[
            "client", "--connect", "a:1", "report", "lstm", "--node", "16nm",
        ]))
        .unwrap_err();
        assert!(e.message.contains("serve"), "{}", e.message);
    }
}
