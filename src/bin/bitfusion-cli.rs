//! `bitfusion-cli` — drive the Bit Fusion reproduction from the command
//! line: inspect benchmarks, simulate them on any configuration, compare
//! against the baselines, dump Fusion-ISA assembly, and run sweeps.
//!
//! ```text
//! bitfusion-cli list
//! bitfusion-cli report cifar-10 --batch 16 --bandwidth 256
//! bitfusion-cli compare alexnet
//! bitfusion-cli asm lstm --layer lstm1
//! bitfusion-cli sweep rnn --batch
//! bitfusion-cli sweep vgg-7 --bandwidth
//! ```

use std::env;
use std::process::ExitCode;

use bitfusion::baselines::{EyerissSim, GpuMode, GpuModel, StripesSim};
use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::dnn::model::Model;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::isa::asm::format_block;
use bitfusion::sim::{
    bandwidth_sweep_with, batch_sweep_with, AnalyticBackend, BitFusionSim, EventBackend,
    PerfReport,
};

fn usage() -> &'static str {
    "bitfusion-cli — Bit Fusion (ISCA 2018) reproduction driver

USAGE:
  bitfusion-cli list
  bitfusion-cli report  <benchmark> [--batch N] [--bandwidth BITS] [--arch 45nm|16nm|stripes]
                        [--backend analytic|event]
  bitfusion-cli compare <benchmark> [--batch N] [--backend analytic|event]
  bitfusion-cli asm     <benchmark> [--layer NAME] [--batch N]
  bitfusion-cli sweep   <benchmark> (--batch | --bandwidth) [--backend analytic|event]

The `event` backend runs the trace-driven timing model on the Bit Fusion
side of each command; `report` additionally prints its stall attribution
(bandwidth- vs compute-starved cycles).

BENCHMARKS:
  alexnet cifar-10 lstm lenet-5 resnet-18 rnn svhn vgg-7 (case-insensitive)"
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    let needle = name.to_lowercase();
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().to_lowercase() == needle)
}

struct Args {
    positional: Vec<String>,
    batch: u64,
    bandwidth: Option<u32>,
    arch: String,
    backend: String,
    layer: Option<String>,
    sweep_batch: bool,
    sweep_bandwidth: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        batch: 16,
        bandwidth: None,
        arch: "45nm".into(),
        backend: "analytic".into(),
        layer: None,
        sweep_batch: false,
        sweep_bandwidth: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--batch" => {
                // Value is optional: bare `--batch` selects the batch sweep.
                if let Some(v) = it.clone().next() {
                    if let Ok(n) = v.parse::<u64>() {
                        args.batch = n;
                        it.next();
                    }
                }
                args.sweep_batch = true;
            }
            "--bandwidth" => {
                if let Some(v) = it.clone().next() {
                    if let Ok(bw) = v.parse::<u32>() {
                        args.bandwidth = Some(bw);
                        it.next();
                    }
                }
                args.sweep_bandwidth = true;
            }
            "--arch" => args.arch = it.next().ok_or("--arch needs a value")?.clone(),
            "--backend" => args.backend = it.next().ok_or("--backend needs a value")?.clone(),
            "--layer" => args.layer = Some(it.next().ok_or("--layer needs a value")?.clone()),
            other if !other.starts_with("--") => args.positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !matches!(args.backend.as_str(), "analytic" | "event") {
        return Err(format!(
            "unknown backend `{}` (analytic|event)",
            args.backend
        ));
    }
    Ok(args)
}

/// Runs a model on the Bit Fusion simulator with the selected backend.
fn run_sim(arch: ArchConfig, model: &Model, batch: u64, backend: &str) -> Result<PerfReport, String> {
    match backend {
        "event" => BitFusionSim::event(arch).run(model, batch),
        _ => BitFusionSim::new(arch).run(model, batch),
    }
    .map_err(|e| e.to_string())
}

fn arch_for(args: &Args) -> Result<ArchConfig, String> {
    let mut arch = match args.arch.as_str() {
        "45nm" => ArchConfig::isca_45nm(),
        "16nm" => ArchConfig::gpu_16nm(),
        "stripes" => ArchConfig::stripes_matched(),
        other => return Err(format!("unknown arch `{other}` (45nm|16nm|stripes)")),
    };
    if let Some(bw) = args.bandwidth {
        arch = arch.with_bandwidth(bw);
    }
    Ok(arch)
}

fn cmd_list() {
    println!("benchmarks (Table II):");
    for b in Benchmark::ALL {
        let m = b.model();
        println!(
            "  {:<10} {:>7.0} MOps  {:>6.2} MB  {} layers",
            b.name(),
            m.total_macs() as f64 / 1e6,
            m.weight_bytes() as f64 / 1e6,
            m.len()
        );
    }
    println!("\narchitectures:");
    for arch in [
        ArchConfig::isca_45nm(),
        ArchConfig::stripes_matched(),
        ArchConfig::gpu_16nm(),
    ] {
        println!("  {arch}");
    }
}

fn cmd_report(b: Benchmark, args: &Args) -> Result<(), String> {
    let arch = arch_for(args)?;
    let report = run_sim(arch, &b.model(), args.batch, &args.backend)?;
    print!("{report}");
    println!(
        "dram traffic: {:.2} Mb/input; energy/input: {}",
        report.total_dram_bits() as f64 / report.batch as f64 / 1e6,
        report.energy_per_input()
    );
    if args.backend == "event" {
        let s = report.total_stalls();
        println!(
            "stalls: {} cycles bandwidth-starved, {} compute-starved, {} fill/drain",
            s.bandwidth_starved, s.compute_starved, s.fill_drain
        );
    }
    Ok(())
}

fn cmd_compare(b: Benchmark, args: &Args) -> Result<(), String> {
    let r = run_sim(ArchConfig::isca_45nm(), &b.model(), args.batch, &args.backend)?;
    println!(
        "{} (batch {}): BitFusion-45nm {:.3} ms/input, {}",
        b.name(),
        args.batch,
        r.latency_ms_per_input(),
        r.energy_per_input()
    );
    let ey = EyerissSim::default().run(&b.reference_model(), args.batch);
    println!(
        "  vs Eyeriss: {:.2}x faster, {:.2}x less energy",
        ey.latency_ms_per_input() / r.latency_ms_per_input(),
        ey.energy.total_pj() / r.total_energy().total_pj()
    );
    let rs = run_sim(
        ArchConfig::stripes_matched(),
        &b.model(),
        args.batch,
        &args.backend,
    )?;
    let st = StripesSim::default().run(&b.model(), args.batch);
    println!(
        "  vs Stripes: {:.2}x faster, {:.2}x less energy",
        st.latency_ms_per_input() / rs.latency_ms_per_input(),
        st.energy.total_pj() / rs.total_energy().total_pj()
    );
    let tx2 = GpuModel::tegra_x2().run(&b.reference_model(), args.batch, GpuMode::Fp32);
    let r16 = run_sim(ArchConfig::gpu_16nm(), &b.model(), args.batch, &args.backend)?;
    println!(
        "  vs Tegra X2 (16 nm config): {:.1}x faster at 0.895 W",
        tx2.latency_ms_per_input() / r16.latency_ms_per_input()
    );
    Ok(())
}

fn cmd_asm(b: Benchmark, args: &Args) -> Result<(), String> {
    let arch = arch_for(args)?;
    let plan = compile(&b.model(), &arch, args.batch).map_err(|e| e.to_string())?;
    for l in &plan.layers {
        if let Some(want) = &args.layer {
            if &l.name != want {
                continue;
            }
        }
        println!("{}", format_block(&l.block));
    }
    Ok(())
}

fn cmd_sweep(b: Benchmark, args: &Args) -> Result<(), String> {
    let arch = ArchConfig::isca_45nm();
    let event = args.backend == "event";
    if args.sweep_bandwidth {
        let bws = [32, 64, 128, 256, 512];
        let sweep = if event {
            bandwidth_sweep_with(&EventBackend, &arch, &b.model(), 16, &bws)
        } else {
            bandwidth_sweep_with(&AnalyticBackend, &arch, &b.model(), 16, &bws)
        }
        .map_err(|e| e.to_string())?;
        println!(
            "{} bandwidth sweep (batch 16, {} backend, vs 128 b/cyc):",
            b.name(),
            args.backend
        );
        for (bw, s) in sweep.speedups_vs(128) {
            println!("  {bw:>4} bits/cycle: {s:5.2}x");
        }
        return Ok(());
    }
    let batches = [1, 4, 16, 64, 256];
    let sweep = if event {
        batch_sweep_with(&EventBackend, &arch, &b.model(), &batches)
    } else {
        batch_sweep_with(&AnalyticBackend, &arch, &b.model(), &batches)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "{} batch sweep (per-input speedup vs batch 1, {} backend):",
        b.name(),
        args.backend
    );
    for (batch, s) in sweep.per_input_speedups_vs(1) {
        println!("  batch {batch:>3}: {s:5.2}x");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(usage().to_string());
    }
    let command = argv[0].clone();
    let args = parse_args(&argv[1..])?;
    if command == "list" {
        cmd_list();
        return Ok(());
    }
    let bench_name = args
        .positional
        .first()
        .ok_or_else(|| format!("`{command}` needs a benchmark name\n\n{}", usage()))?;
    let b = find_benchmark(bench_name)
        .ok_or_else(|| format!("unknown benchmark `{bench_name}`\n\n{}", usage()))?;
    match command.as_str() {
        "report" => cmd_report(b, &args),
        "compare" => cmd_compare(b, &args),
        "asm" => cmd_asm(b, &args),
        "sweep" => cmd_sweep(b, &args),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
