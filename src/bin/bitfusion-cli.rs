//! `bitfusion-cli` — drive the Bit Fusion reproduction from the command
//! line.
//!
//! This binary is a thin adapter over the service layer: every subcommand
//! parses argv into a typed [`Request`], hands it to a [`Session`], and
//! prints either the human-readable rendering or (with `--json`) the
//! response's single-line wire form. `serve` runs the long-running
//! JSON-lines loop over stdin/stdout with the same session machinery, so
//! one-shot `--json` output and serve responses are byte-identical.
//!
//! ```text
//! bitfusion-cli list
//! bitfusion-cli report cifar-10 --batch 16 --bandwidth 256 --json
//! bitfusion-cli compare alexnet
//! bitfusion-cli asm lstm --layer lstm1
//! bitfusion-cli sweep rnn --batch
//! bitfusion-cli sweep vgg-7 --bandwidth
//! bitfusion-cli dse --rows 16,32 --cols 8,16 --bandwidth 64,128,256 --json
//! echo '{"cmd":"report","benchmark":"lstm"}' | bitfusion-cli serve
//! ```

use std::env;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use bitfusion::dnn::{export_model, parse_model, Model, QuantSpec};
use bitfusion::energy::TechNode;
use bitfusion::service::protocol::{
    quant_spec_from_json, ArchPreset, BackendChoice, DseParams, ModelSource, SweepAxis,
};
use bitfusion::service::session::find_model;
use bitfusion::service::{render, serve, Request, Response, Session};
use bitfusion::sim::SimOptions;

fn usage() -> &'static str {
    "bitfusion-cli — Bit Fusion (ISCA 2018) reproduction driver

USAGE:
  bitfusion-cli list     [--json]
  bitfusion-cli report   <benchmark | --model FILE> [--batch N] [--bandwidth BITS]
                         [--arch 45nm|16nm|stripes] [--backend analytic|event] [--quant SPEC]
                         [--json] [calibration]
  bitfusion-cli compare  <benchmark | --model FILE> [--batch N] [--backend analytic|event]
                         [--quant SPEC] [--json] [calibration]
  bitfusion-cli asm      <benchmark | --model FILE> [--layer NAME] [--batch N]
                         [--arch 45nm|16nm|stripes] [--json]
  bitfusion-cli sweep    <benchmark | --model FILE> (--batch | --bandwidth)
                         [--backend analytic|event] [--quant SPEC] [--json] [calibration]
  bitfusion-cli quantize <benchmark | --model FILE> [--quant SPEC] [--json]
  bitfusion-cli dse      [--rows LIST] [--cols LIST] [--ibuf-kb LIST] [--wbuf-kb LIST]
                         [--obuf-kb LIST] [--bandwidth LIST] [--batch LIST]
                         [--quant SPEC,SPEC] [--networks all|name,name] [--model FILE]...
                         [--workers N] [--backend analytic|event] [--json] [calibration]
  bitfusion-cli export-model <benchmark|attention-block|depthwise-net>
  bitfusion-cli serve    [--workers N] [--cache-capacity N] [--backend analytic|event]
                         [calibration]

external models (`bitfusion-model/1` JSON documents):
  `--model FILE` simulates a model file instead of a zoo benchmark; the
  simulating subcommands take a benchmark name or --model, never both.
  `dse --model` may repeat to add external networks to the explored set
  (combine with `--networks` to keep zoo networks too). `export-model`
  prints a zoo network — or the attention-block / depthwise-net example —
  as a model document to edit and feed back through --model.

quantization SPEC (per-layer bitwidth policies, applied over the paper's
Table II assignment):
  paper | uniform1|2|4|8|16 | a clause list like default=4/1,conv=2/2,layer:fc8=8/8
  | a path to a .json spec file ({\"preset\":\"uniform8\"} or
  {\"default\":\"4/1\",\"kinds\":[{\"kind\":\"conv\",\"precision\":\"2/2\"}],...}).
  `dse --quant` takes a comma list of presets/files and explores them as an
  axis, reporting per-network speedups vs uniform8.

calibration (threaded through the session's SimOptions):
  --systolic-efficiency F   fraction of peak systolic throughput (default 0.85)
  --dram-efficiency F       fraction of peak DRAM bandwidth (default 0.70)
  --node 45nm|16nm|65nm     technology node energies are reported at (default 45nm)

`--json` prints the response as one line of JSON — the same bytes `serve`
writes for the equivalent request. `serve` reads one JSON request per stdin
line ({\"cmd\":\"report\",\"benchmark\":\"lstm\",...}) and writes one
response per stdout line, in request order, dispatching concurrently.

BENCHMARKS:
  alexnet cifar-10 lstm lenet-5 resnet-18 rnn svhn vgg-7 (case-insensitive)"
}

/// A usage error: which subcommand, which flag, what went wrong.
#[derive(Debug)]
struct UsageError {
    subcommand: String,
    message: String,
}

impl UsageError {
    fn new(subcommand: &str, message: impl Into<String>) -> Self {
        UsageError {
            subcommand: subcommand.to_string(),
            message: message.into(),
        }
    }
}

/// Cursor over argv with subcommand-aware error messages.
struct Flags<'a> {
    subcommand: &'a str,
    argv: &'a [String],
    pos: usize,
}

impl<'a> Flags<'a> {
    fn new(subcommand: &'a str, argv: &'a [String]) -> Self {
        Flags {
            subcommand,
            argv,
            pos: 0,
        }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.argv.get(self.pos)?;
        self.pos += 1;
        Some(arg)
    }

    fn err(&self, message: impl Into<String>) -> UsageError {
        UsageError::new(self.subcommand, message)
    }

    /// The value following `flag`, or an error naming flag + subcommand.
    fn value(&mut self, flag: &str) -> Result<&'a str, UsageError> {
        // A following token that is itself a flag is not a value.
        match self.argv.get(self.pos) {
            Some(v) if !v.starts_with("--") => {
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err(format!("{flag} needs a value"))),
        }
    }

    /// Parses `flag`'s value, or an error naming flag, value, and
    /// subcommand.
    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, UsageError> {
        let v = self.value(flag)?;
        v.parse()
            .map_err(|_| self.err(format!("{flag}: invalid value `{v}`")))
    }

    /// Parses `flag`'s comma-separated list value.
    fn list<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Vec<T>, UsageError> {
        let v = self.value(flag)?;
        let items: Result<Vec<T>, _> = v.split(',').map(str::parse).collect();
        match items {
            Ok(items) if !items.is_empty() => Ok(items),
            _ => Err(self.err(format!("{flag} needs a comma-separated list, got `{v}`"))),
        }
    }

    fn unknown(&self, flag: &str) -> UsageError {
        self.err(format!("unknown flag `{flag}`"))
    }

    /// Resolves one `--quant` value to its canonical compact spelling: a
    /// preset/clause-list spelling parsed directly, or a `.json` spec file
    /// read from disk.
    fn quant_value(&mut self, value: &str) -> Result<String, UsageError> {
        let spec = if value.ends_with(".json") {
            let text = std::fs::read_to_string(value)
                .map_err(|e| self.err(format!("--quant: cannot read `{value}`: {e}")))?;
            let doc = bitfusion::service::json::parse(&text)
                .map_err(|e| self.err(format!("--quant: `{value}` is not valid JSON: {e}")))?;
            quant_spec_from_json(&doc).map_err(|e| self.err(format!("--quant `{value}`: {e}")))?
        } else {
            QuantSpec::parse(value).map_err(|e| self.err(format!("--quant: {e}")))?
        };
        Ok(spec.to_string())
    }

    /// Reads `--model`'s file and parses it as a `bitfusion-model/1`
    /// document, with the path in every diagnostic.
    fn model_value(&mut self) -> Result<Model, UsageError> {
        let path = self.value("--model")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| self.err(format!("--model: cannot read `{path}`: {e}")))?;
        parse_model(&text).map_err(|e| self.err(format!("--model `{path}`: {e}")))
    }
}

/// Everything a parsed invocation needs to run.
#[derive(Debug)]
struct Invocation {
    mode: Mode,
    json: bool,
    options: SimOptions,
    /// `--backend`: a per-request override for one-shot commands, the
    /// session default for `serve`.
    backend: Option<BackendChoice>,
}

// One Mode lives per process; the Request-sized variant is not worth a Box.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Mode {
    OneShot(Request),
    ExportModel(String),
    Serve { workers: usize, cache_capacity: Option<usize> },
}

/// Tries to consume one shared flag (`--json`, `--backend`, calibration
/// knobs). Returns whether the flag was recognized.
#[allow(clippy::too_many_arguments)]
fn shared_flag(
    flags: &mut Flags<'_>,
    arg: &str,
    json: &mut bool,
    backend: &mut Option<BackendChoice>,
    options: &mut SimOptions,
) -> Result<bool, UsageError> {
    match arg {
        "--json" => *json = true,
        "--backend" => {
            let v = flags.value("--backend")?;
            *backend = Some(BackendChoice::parse(v).map_err(|e| flags.err(e))?);
        }
        "--systolic-efficiency" => {
            let v: f64 = flags.parse("--systolic-efficiency")?;
            if !(v > 0.0 && v <= 1.0) {
                return Err(flags.err(format!(
                    "--systolic-efficiency must be in (0, 1], got `{v}`"
                )));
            }
            options.systolic_efficiency = v;
        }
        "--dram-efficiency" => {
            let v: f64 = flags.parse("--dram-efficiency")?;
            if !(v > 0.0 && v <= 1.0) {
                return Err(flags.err(format!("--dram-efficiency must be in (0, 1], got `{v}`")));
            }
            options.dram_efficiency = v;
        }
        "--node" => {
            options.node = match flags.value("--node")? {
                "45nm" => TechNode::Nm45,
                "16nm" => TechNode::Nm16,
                "65nm" => TechNode::Nm65,
                other => {
                    return Err(flags.err(format!("--node: unknown node `{other}` (45nm|16nm|65nm)")))
                }
            };
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_invocation(argv: &[String]) -> Result<Invocation, UsageError> {
    let Some(subcommand) = argv.first() else {
        return Err(UsageError::new("", usage()));
    };
    let subcommand = subcommand.as_str();
    let rest = &argv[1..];
    let mut flags = Flags::new(subcommand, rest);
    let mut json = false;
    let mut backend: Option<BackendChoice> = None;
    let mut options = SimOptions::default();
    let mut positional: Vec<&str> = Vec::new();

    // Subcommand-specific state.
    let mut batch: Option<u64> = None;
    let mut bandwidth: Option<u32> = None;
    let mut arch = ArchPreset::default();
    let mut layer: Option<String> = None;
    let mut sweep_axis: Option<SweepAxis> = None;
    let mut quant: Option<String> = None;
    let mut model: Option<Model> = None;
    let mut dse = DseParams::default();
    let mut workers: usize = 0;
    let mut cache_capacity: Option<usize> = None;

    while let Some(arg) = flags.next() {
        if !arg.starts_with("--") {
            positional.push(arg);
            continue;
        }
        if shared_flag(&mut flags, arg, &mut json, &mut backend, &mut options)? {
            let calibration = matches!(
                arg,
                "--systolic-efficiency" | "--dram-efficiency" | "--node"
            );
            let takes_backend = matches!(
                subcommand,
                "report" | "compare" | "sweep" | "dse" | "serve"
            );
            if arg == "--backend" && !takes_backend {
                return Err(flags.err(format!("`{subcommand}` does not take --backend")));
            }
            if calibration && !takes_backend {
                return Err(flags.err(format!("`{subcommand}` does not take {arg}")));
            }
            if arg == "--json" && subcommand == "serve" {
                return Err(flags.err("`serve` always speaks JSON; drop --json"));
            }
            continue;
        }
        match (subcommand, arg) {
            ("report", "--batch") | ("compare", "--batch") | ("asm", "--batch") => {
                batch = Some(flags.parse("--batch")?);
            }
            ("report", "--bandwidth") => bandwidth = Some(flags.parse("--bandwidth")?),
            ("report", "--arch") | ("asm", "--arch") => {
                let v = flags.value("--arch")?;
                arch = ArchPreset::parse(v).map_err(|e| flags.err(e))?;
            }
            ("asm", "--layer") => layer = Some(flags.value("--layer")?.to_string()),
            ("sweep", "--batch") => sweep_axis = Some(SweepAxis::Batch),
            ("sweep", "--bandwidth") => sweep_axis = Some(SweepAxis::Bandwidth),
            ("report", "--quant") | ("compare", "--quant") | ("sweep", "--quant")
            | ("quantize", "--quant") => {
                let v = flags.value("--quant")?.to_string();
                quant = Some(flags.quant_value(&v)?);
            }
            ("dse", "--quant") => {
                let v = flags.value("--quant")?.to_string();
                let mut quants = Vec::new();
                for entry in v.split(',') {
                    if entry.contains('=') {
                        return Err(flags.err(format!(
                            "--quant: clause-list specs (`{entry}`) are ambiguous in a comma \
                             list; put the spec in a .json file instead"
                        )));
                    }
                    quants.push(flags.quant_value(entry.trim())?);
                }
                // split(',') always yields at least one entry, and an empty
                // entry already failed inside quant_value.
                dse.quants = quants;
            }
            ("report", "--model") | ("compare", "--model") | ("asm", "--model")
            | ("sweep", "--model") | ("quantize", "--model") => {
                if model.is_some() {
                    return Err(flags.err("--model given twice"));
                }
                model = Some(flags.model_value()?);
            }
            ("dse", "--model") => dse.models.push(flags.model_value()?),
            ("dse", "--rows") => dse.rows = flags.list("--rows")?,
            ("dse", "--cols") => dse.cols = flags.list("--cols")?,
            ("dse", "--ibuf-kb") => dse.ibuf_kb = flags.list("--ibuf-kb")?,
            ("dse", "--wbuf-kb") => dse.wbuf_kb = flags.list("--wbuf-kb")?,
            ("dse", "--obuf-kb") => dse.obuf_kb = flags.list("--obuf-kb")?,
            ("dse", "--bandwidth") => dse.bandwidth = flags.list("--bandwidth")?,
            ("dse", "--batch") => dse.batches = flags.list("--batch")?,
            ("dse", "--networks") => {
                let v = flags.value("--networks")?;
                dse.networks = if v == "all" {
                    None
                } else {
                    Some(v.split(',').map(str::to_string).collect())
                };
            }
            ("dse", "--workers") => dse.workers = flags.parse("--workers")?,
            ("serve", "--workers") => workers = flags.parse("--workers")?,
            ("serve", "--cache-capacity") => {
                cache_capacity = Some(flags.parse("--cache-capacity")?)
            }
            _ => return Err(flags.unknown(arg)),
        }
    }

    let benchmark = |positional: &[&str]| -> Result<String, UsageError> {
        match positional {
            [name] => Ok(name.to_string()),
            [] => Err(UsageError::new(
                subcommand,
                format!("`{subcommand}` needs a benchmark name"),
            )),
            more => Err(UsageError::new(
                subcommand,
                format!("unexpected argument `{}`", more[1]),
            )),
        }
    };
    // The simulating subcommands name their workload either way — a zoo
    // benchmark positional XOR an external `--model` file.
    let source = |positional: &[&str], model: Option<Model>| -> Result<ModelSource, UsageError> {
        match (positional, model) {
            ([name], None) => Ok(ModelSource::zoo(*name)),
            ([], Some(m)) => Ok(ModelSource::External(m)),
            ([_], Some(_)) => Err(UsageError::new(
                subcommand,
                "give either a benchmark name or --model, not both",
            )),
            ([], None) => Err(UsageError::new(
                subcommand,
                format!("`{subcommand}` needs a benchmark name or --model FILE"),
            )),
            (more, _) => Err(UsageError::new(
                subcommand,
                format!("unexpected argument `{}`", more[1]),
            )),
        }
    };
    let no_positional = |positional: &[&str]| -> Result<(), UsageError> {
        match positional.first() {
            None => Ok(()),
            Some(extra) => Err(UsageError::new(
                subcommand,
                format!("unexpected argument `{extra}`"),
            )),
        }
    };

    let mode = match subcommand {
        "list" => {
            no_positional(&positional)?;
            Mode::OneShot(Request::List)
        }
        "report" => Mode::OneShot(Request::Report {
            model: source(&positional, model)?,
            batch: batch.unwrap_or(16),
            bandwidth,
            arch,
            backend,
            quant,
        }),
        "compare" => Mode::OneShot(Request::Compare {
            model: source(&positional, model)?,
            batch: batch.unwrap_or(16),
            backend,
            quant,
        }),
        "asm" => Mode::OneShot(Request::Asm {
            model: source(&positional, model)?,
            batch: batch.unwrap_or(16),
            arch,
            layer,
        }),
        "sweep" => Mode::OneShot(Request::Sweep {
            model: source(&positional, model)?,
            axis: sweep_axis.ok_or_else(|| {
                UsageError::new(subcommand, "`sweep` needs an axis: --batch or --bandwidth")
            })?,
            backend,
            quant,
        }),
        "quantize" => Mode::OneShot(Request::Quantize {
            model: source(&positional, model)?,
            quant,
        }),
        "export-model" => Mode::ExportModel(benchmark(&positional)?),
        "dse" => {
            no_positional(&positional)?;
            dse.backend = backend;
            Mode::OneShot(Request::Dse(dse))
        }
        "serve" => {
            no_positional(&positional)?;
            Mode::Serve {
                workers,
                cache_capacity,
            }
        }
        other => {
            return Err(UsageError::new(
                other,
                format!("unknown command `{other}`"),
            ))
        }
    };
    Ok(Invocation {
        mode,
        json,
        options,
        backend,
    })
}

fn run() -> Result<ExitCode, UsageError> {
    let argv: Vec<String> = env::args().skip(1).collect();
    let inv = parse_invocation(&argv)?;
    match inv.mode {
        Mode::Serve {
            workers,
            cache_capacity,
        } => {
            let mut session = Session::new()
                .with_options(inv.options)
                .with_backend(inv.backend.unwrap_or(BackendChoice::Analytic));
            if let Some(capacity) = cache_capacity {
                session = session.with_cache_capacity(capacity);
            }
            let stdout = std::io::stdout();
            let summary = match serve(
                &session,
                BufReader::new(std::io::stdin()),
                BufWriter::new(stdout.lock()),
                workers,
            ) {
                Ok(summary) => summary,
                // A dead client (EPIPE) or failed reader is a runtime
                // failure, not a usage error: no banner, exit 1.
                Err(e) => {
                    eprintln!("serve: I/O error: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            // An untouched tier has no hit rate — print `n/a`, not `0.0%`.
            let rate = |r: Option<f64>| match r {
                Some(r) => format!("{:.1}%", r * 100.0),
                None => "n/a".to_string(),
            };
            let stats = session.cache_stats();
            let layers = session.layer_cache_stats();
            eprintln!(
                "serve: {} responses ({} errors); artifact cache: {} hits, {} misses, {} evictions, {}/{} resident, {} hit rate; layer cache: {} hits, {} misses, {}/{} resident, {} hit rate",
                summary.responses,
                summary.errors,
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.len,
                stats.capacity,
                rate(stats.hit_rate()),
                layers.hits,
                layers.misses,
                layers.len,
                layers.capacity,
                rate(layers.hit_rate())
            );
            Ok(ExitCode::SUCCESS)
        }
        Mode::ExportModel(name) => match find_model(&name) {
            Ok(m) => {
                // A `bitfusion-model/1` document: already JSON, byte-stable,
                // and re-importable through `--model`.
                println!("{}", export_model(&m).encode());
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("export-model: {e}");
                Ok(ExitCode::FAILURE)
            }
        },
        Mode::OneShot(request) => {
            let session = Session::new().with_options(inv.options);
            let response = session.handle(&request);
            let failed = matches!(response, Response::Error { .. });
            if inv.json {
                println!("{}", response.encode());
            } else if failed {
                eprintln!("{}", render(&response));
            } else {
                println!("{}", render(&response));
            }
            Ok(if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            if e.subcommand.is_empty() {
                eprintln!("{}", e.message);
            } else {
                eprintln!("bitfusion-cli {}: {}\n\n{}", e.subcommand, e.message, usage());
            }
            // Usage errors exit 2, runtime failures exit 1 — scripts can
            // tell a typo from an infeasible configuration.
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn report_flags_build_the_request() {
        let inv = parse_invocation(&argv(&[
            "report", "lstm", "--batch", "4", "--bandwidth", "256", "--arch", "16nm",
            "--backend", "event", "--json",
        ]))
        .unwrap();
        assert!(inv.json);
        let Mode::OneShot(Request::Report {
            model,
            batch,
            bandwidth,
            arch,
            backend,
            quant,
        }) = inv.mode
        else {
            panic!("expected report");
        };
        assert_eq!(model, ModelSource::zoo("lstm"));
        assert_eq!(batch, 4);
        assert_eq!(bandwidth, Some(256));
        assert_eq!(arch, ArchPreset::Gpu16nm);
        assert_eq!(backend, Some(BackendChoice::Event));
        assert_eq!(quant, None);
    }

    #[test]
    fn quant_flags_canonicalize_and_validate() {
        let inv = parse_invocation(&argv(&["report", "lstm", "--quant", "default=8/8"])).unwrap();
        let Mode::OneShot(Request::Report { quant, .. }) = inv.mode else {
            panic!("expected report");
        };
        assert_eq!(quant.as_deref(), Some("uniform8"), "canonical spelling");

        let inv = parse_invocation(&argv(&["quantize", "svhn", "--quant", "uniform16"])).unwrap();
        let Mode::OneShot(Request::Quantize { model, quant }) = inv.mode else {
            panic!("expected quantize");
        };
        assert_eq!(model, ModelSource::zoo("svhn"));
        assert_eq!(quant.as_deref(), Some("uniform16"));

        let e = parse_invocation(&argv(&["report", "lstm", "--quant", "uniform9"])).unwrap_err();
        assert!(e.message.contains("uniform9"), "{}", e.message);

        // dse takes a comma list of presets/files...
        let inv = parse_invocation(&argv(&["dse", "--quant", "paper,uniform8"])).unwrap();
        let Mode::OneShot(Request::Dse(p)) = inv.mode else {
            panic!("expected dse");
        };
        assert_eq!(p.quants, vec!["paper".to_string(), "uniform8".to_string()]);
        // ...but rejects ambiguous inline clause lists.
        let e = parse_invocation(&argv(&["dse", "--quant", "default=4/1,conv=2/2"])).unwrap_err();
        assert!(e.message.contains(".json"), "{}", e.message);

        // quantize takes no backend/calibration flags.
        let e = parse_invocation(&argv(&["quantize", "lstm", "--backend", "event"])).unwrap_err();
        assert!(e.message.contains("--backend"), "{}", e.message);
    }

    #[test]
    fn errors_name_flag_and_subcommand() {
        let e = parse_invocation(&argv(&["report", "lstm", "--bogus"])).unwrap_err();
        assert_eq!(e.subcommand, "report");
        assert!(e.message.contains("--bogus"), "{}", e.message);

        let e = parse_invocation(&argv(&["report", "lstm", "--batch"])).unwrap_err();
        assert!(e.message.contains("--batch needs a value"), "{}", e.message);

        let e = parse_invocation(&argv(&["report", "lstm", "--batch", "abc"])).unwrap_err();
        assert!(e.message.contains("--batch") && e.message.contains("abc"), "{}", e.message);

        let e = parse_invocation(&argv(&["sweep", "rnn"])).unwrap_err();
        assert!(e.message.contains("--batch or --bandwidth"), "{}", e.message);

        let e = parse_invocation(&argv(&["asm", "rnn", "--backend", "event"])).unwrap_err();
        assert!(e.message.contains("--backend"), "{}", e.message);

        let e = parse_invocation(&argv(&["frobnicate"])).unwrap_err();
        assert!(e.message.contains("frobnicate"), "{}", e.message);
    }

    #[test]
    fn calibration_knobs_thread_into_options() {
        let inv = parse_invocation(&argv(&[
            "report",
            "rnn",
            "--systolic-efficiency",
            "0.9",
            "--dram-efficiency",
            "0.5",
            "--node",
            "16nm",
        ]))
        .unwrap();
        assert_eq!(inv.options.systolic_efficiency, 0.9);
        assert_eq!(inv.options.dram_efficiency, 0.5);
        assert_eq!(inv.options.node, TechNode::Nm16);

        let e = parse_invocation(&argv(&["report", "rnn", "--systolic-efficiency", "1.5"]))
            .unwrap_err();
        assert!(e.message.contains("(0, 1]"), "{}", e.message);
    }

    #[test]
    fn sweep_axis_flags_are_valueless() {
        let inv = parse_invocation(&argv(&["sweep", "rnn", "--bandwidth"])).unwrap();
        let Mode::OneShot(Request::Sweep { axis, .. }) = inv.mode else {
            panic!("expected sweep");
        };
        assert_eq!(axis, SweepAxis::Bandwidth);
    }

    #[test]
    fn dse_lists_parse() {
        let inv = parse_invocation(&argv(&[
            "dse", "--rows", "16,32", "--bandwidth", "64,128", "--networks", "lstm,rnn",
            "--workers", "2", "--backend", "event",
        ]))
        .unwrap();
        let Mode::OneShot(Request::Dse(p)) = inv.mode else {
            panic!("expected dse");
        };
        assert_eq!(p.rows, vec![16, 32]);
        assert_eq!(p.bandwidth, vec![64, 128]);
        assert_eq!(p.networks, Some(vec!["lstm".to_string(), "rnn".to_string()]));
        assert_eq!(p.workers, 2);
        assert_eq!(p.backend, Some(BackendChoice::Event));
    }

    /// Writes a valid model document to a temp path for `--model` tests.
    fn temp_model(tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("bitfusion-cli-test-{tag}.json"));
        std::fs::write(
            &path,
            r#"{"format":"bitfusion-model/1","name":"tiny","layers":[{"name":"fc1","kind":"fc","in_features":64,"out_features":32,"precision":"4/1"}]}"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn model_flag_loads_an_external_model() {
        let path = temp_model("report");
        let inv =
            parse_invocation(&argv(&["report", "--model", path.to_str().unwrap()])).unwrap();
        let Mode::OneShot(Request::Report { model, .. }) = inv.mode else {
            panic!("expected report");
        };
        let ModelSource::External(m) = model else {
            panic!("expected an external model, got {model:?}");
        };
        assert_eq!(m.name, "tiny");
        assert_eq!(m.layers.len(), 1);

        // The workload is the benchmark positional XOR --model.
        let e = parse_invocation(&argv(&["report", "lstm", "--model", path.to_str().unwrap()]))
            .unwrap_err();
        assert!(e.message.contains("not both"), "{}", e.message);
        let e = parse_invocation(&argv(&["report"])).unwrap_err();
        assert!(e.message.contains("--model"), "{}", e.message);

        // Diagnostics carry the path: unreadable file, invalid document.
        let e = parse_invocation(&argv(&["report", "--model", "/nonexistent/m.json"]))
            .unwrap_err();
        assert!(e.message.contains("/nonexistent/m.json"), "{}", e.message);
        let bad = std::env::temp_dir().join("bitfusion-cli-test-bad.json");
        std::fs::write(&bad, r#"{"format":"bitfusion-model/1"}"#).unwrap();
        let e = parse_invocation(&argv(&["report", "--model", bad.to_str().unwrap()]))
            .unwrap_err();
        assert!(
            e.message.contains("model.name") && e.message.contains("bad.json"),
            "{}",
            e.message
        );
    }

    #[test]
    fn dse_model_flag_repeats() {
        let path = temp_model("dse");
        let p = path.to_str().unwrap();
        let inv =
            parse_invocation(&argv(&["dse", "--model", p, "--model", p, "--workers", "1"]))
                .unwrap();
        let Mode::OneShot(Request::Dse(params)) = inv.mode else {
            panic!("expected dse");
        };
        assert_eq!(params.models.len(), 2);
        assert_eq!(params.models[0].name, "tiny");
        assert_eq!(params.networks, None);
    }

    #[test]
    fn export_model_takes_one_name() {
        let inv = parse_invocation(&argv(&["export-model", "lstm"])).unwrap();
        let Mode::ExportModel(name) = inv.mode else {
            panic!("expected export-model, got {:?}", inv.mode);
        };
        assert_eq!(name, "lstm");
        let e = parse_invocation(&argv(&["export-model"])).unwrap_err();
        assert_eq!(e.subcommand, "export-model");
    }

    #[test]
    fn serve_parses_its_flags() {
        let inv = parse_invocation(&argv(&[
            "serve",
            "--workers",
            "3",
            "--cache-capacity",
            "64",
            "--dram-efficiency",
            "0.6",
        ]))
        .unwrap();
        let Mode::Serve {
            workers,
            cache_capacity,
        } = inv.mode
        else {
            panic!("expected serve");
        };
        assert_eq!(workers, 3);
        assert_eq!(cache_capacity, Some(64));
        assert_eq!(inv.options.dram_efficiency, 0.6);
    }
}
