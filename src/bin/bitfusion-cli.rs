//! `bitfusion-cli` — drive the Bit Fusion reproduction from the command
//! line: inspect benchmarks, simulate them on any configuration, compare
//! against the baselines, dump Fusion-ISA assembly, and run sweeps.
//!
//! ```text
//! bitfusion-cli list
//! bitfusion-cli report cifar-10 --batch 16 --bandwidth 256
//! bitfusion-cli compare alexnet
//! bitfusion-cli asm lstm --layer lstm1
//! bitfusion-cli sweep rnn --batch
//! bitfusion-cli sweep vgg-7 --bandwidth
//! bitfusion-cli dse --rows 16,32 --cols 8,16 --bandwidth 64,128,256
//! ```

use std::env;
use std::process::ExitCode;

use bitfusion::baselines::{EyerissSim, GpuMode, GpuModel, StripesSim};
use bitfusion::compiler::compile;
use bitfusion::core::arch::ArchConfig;
use bitfusion::core::grid::ArchGrid;
use bitfusion::dnn::model::Model;
use bitfusion::dnn::zoo::Benchmark;
use bitfusion::isa::asm::format_block;
use bitfusion::sim::{
    bandwidth_sweep_with, batch_sweep_with, explore, AnalyticBackend, BitFusionSim, DseResult,
    DseSpec, EventBackend, PerfReport,
};

fn usage() -> &'static str {
    "bitfusion-cli — Bit Fusion (ISCA 2018) reproduction driver

USAGE:
  bitfusion-cli list
  bitfusion-cli report  <benchmark> [--batch N] [--bandwidth BITS] [--arch 45nm|16nm|stripes]
                        [--backend analytic|event]
  bitfusion-cli compare <benchmark> [--batch N] [--backend analytic|event]
  bitfusion-cli asm     <benchmark> [--layer NAME] [--batch N]
  bitfusion-cli sweep   <benchmark> (--batch | --bandwidth) [--backend analytic|event]
  bitfusion-cli dse     [--rows LIST] [--cols LIST] [--ibuf-kb LIST] [--wbuf-kb LIST]
                        [--obuf-kb LIST] [--bandwidth LIST] [--batch LIST]
                        [--networks all|name,name] [--workers N]
                        [--backend analytic|event] [--json]

The `event` backend runs the trace-driven timing model on the Bit Fusion
side of each command; `report` additionally prints its stall attribution
(bandwidth- vs compute-starved cycles).

`dse` explores the cartesian architecture grid (comma-separated candidate
lists per dimension) crossed with the selected networks and batch sizes,
sharded across worker threads with a memoized compile cache, and prints
the Pareto frontier over (cycles, energy, area). `--json` emits the
frontier as machine-readable JSON instead of the table.

BENCHMARKS:
  alexnet cifar-10 lstm lenet-5 resnet-18 rnn svhn vgg-7 (case-insensitive)"
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    let needle = name.to_lowercase();
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().to_lowercase() == needle)
}

struct Args {
    positional: Vec<String>,
    batch: u64,
    bandwidth: Option<u32>,
    arch: String,
    backend: String,
    layer: Option<String>,
    sweep_batch: bool,
    sweep_bandwidth: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        batch: 16,
        bandwidth: None,
        arch: "45nm".into(),
        backend: "analytic".into(),
        layer: None,
        sweep_batch: false,
        sweep_bandwidth: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--batch" => {
                // Value is optional: bare `--batch` selects the batch sweep.
                if let Some(v) = it.clone().next() {
                    if let Ok(n) = v.parse::<u64>() {
                        args.batch = n;
                        it.next();
                    }
                }
                args.sweep_batch = true;
            }
            "--bandwidth" => {
                if let Some(v) = it.clone().next() {
                    if let Ok(bw) = v.parse::<u32>() {
                        args.bandwidth = Some(bw);
                        it.next();
                    }
                }
                args.sweep_bandwidth = true;
            }
            "--arch" => args.arch = it.next().ok_or("--arch needs a value")?.clone(),
            "--backend" => args.backend = it.next().ok_or("--backend needs a value")?.clone(),
            "--layer" => args.layer = Some(it.next().ok_or("--layer needs a value")?.clone()),
            other if !other.starts_with("--") => args.positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !matches!(args.backend.as_str(), "analytic" | "event") {
        return Err(format!(
            "unknown backend `{}` (analytic|event)",
            args.backend
        ));
    }
    Ok(args)
}

/// Runs a model on the Bit Fusion simulator with the selected backend.
fn run_sim(arch: ArchConfig, model: &Model, batch: u64, backend: &str) -> Result<PerfReport, String> {
    match backend {
        "event" => BitFusionSim::event(arch).run(model, batch),
        _ => BitFusionSim::new(arch).run(model, batch),
    }
    .map_err(|e| e.to_string())
}

fn arch_for(args: &Args) -> Result<ArchConfig, String> {
    let mut arch = match args.arch.as_str() {
        "45nm" => ArchConfig::isca_45nm(),
        "16nm" => ArchConfig::gpu_16nm(),
        "stripes" => ArchConfig::stripes_matched(),
        other => return Err(format!("unknown arch `{other}` (45nm|16nm|stripes)")),
    };
    if let Some(bw) = args.bandwidth {
        arch = arch.with_bandwidth(bw);
    }
    Ok(arch)
}

fn cmd_list() {
    println!("benchmarks (Table II):");
    for b in Benchmark::ALL {
        let m = b.model();
        println!(
            "  {:<10} {:>7.0} MOps  {:>6.2} MB  {} layers",
            b.name(),
            m.total_macs() as f64 / 1e6,
            m.weight_bytes() as f64 / 1e6,
            m.len()
        );
    }
    println!("\narchitectures:");
    for arch in [
        ArchConfig::isca_45nm(),
        ArchConfig::stripes_matched(),
        ArchConfig::gpu_16nm(),
    ] {
        println!("  {arch}");
    }
}

fn cmd_report(b: Benchmark, args: &Args) -> Result<(), String> {
    let arch = arch_for(args)?;
    let report = run_sim(arch, &b.model(), args.batch, &args.backend)?;
    print!("{report}");
    println!(
        "dram traffic: {:.2} Mb/input; energy/input: {}",
        report.total_dram_bits() as f64 / report.batch as f64 / 1e6,
        report.energy_per_input()
    );
    if args.backend == "event" {
        let s = report.total_stalls();
        println!(
            "stalls: {} cycles bandwidth-starved, {} compute-starved, {} fill/drain",
            s.bandwidth_starved, s.compute_starved, s.fill_drain
        );
    }
    Ok(())
}

fn cmd_compare(b: Benchmark, args: &Args) -> Result<(), String> {
    let r = run_sim(ArchConfig::isca_45nm(), &b.model(), args.batch, &args.backend)?;
    println!(
        "{} (batch {}): BitFusion-45nm {:.3} ms/input, {}",
        b.name(),
        args.batch,
        r.latency_ms_per_input(),
        r.energy_per_input()
    );
    let ey = EyerissSim::default().run(&b.reference_model(), args.batch);
    println!(
        "  vs Eyeriss: {:.2}x faster, {:.2}x less energy",
        ey.latency_ms_per_input() / r.latency_ms_per_input(),
        ey.energy.total_pj() / r.total_energy().total_pj()
    );
    let rs = run_sim(
        ArchConfig::stripes_matched(),
        &b.model(),
        args.batch,
        &args.backend,
    )?;
    let st = StripesSim::default().run(&b.model(), args.batch);
    println!(
        "  vs Stripes: {:.2}x faster, {:.2}x less energy",
        st.latency_ms_per_input() / rs.latency_ms_per_input(),
        st.energy.total_pj() / rs.total_energy().total_pj()
    );
    let tx2 = GpuModel::tegra_x2().run(&b.reference_model(), args.batch, GpuMode::Fp32);
    let r16 = run_sim(ArchConfig::gpu_16nm(), &b.model(), args.batch, &args.backend)?;
    println!(
        "  vs Tegra X2 (16 nm config): {:.1}x faster at 0.895 W",
        tx2.latency_ms_per_input() / r16.latency_ms_per_input()
    );
    Ok(())
}

fn cmd_asm(b: Benchmark, args: &Args) -> Result<(), String> {
    let arch = arch_for(args)?;
    let plan = compile(&b.model(), &arch, args.batch).map_err(|e| e.to_string())?;
    for l in &plan.layers {
        if let Some(want) = &args.layer {
            if &l.name != want {
                continue;
            }
        }
        println!("{}", format_block(&l.block));
    }
    Ok(())
}

fn cmd_sweep(b: Benchmark, args: &Args) -> Result<(), String> {
    let arch = ArchConfig::isca_45nm();
    let event = args.backend == "event";
    if args.sweep_bandwidth {
        let bws = [32, 64, 128, 256, 512];
        let sweep = if event {
            bandwidth_sweep_with(&EventBackend, &arch, &b.model(), 16, &bws)
        } else {
            bandwidth_sweep_with(&AnalyticBackend, &arch, &b.model(), 16, &bws)
        }
        .map_err(|e| e.to_string())?;
        println!(
            "{} bandwidth sweep (batch 16, {} backend, vs 128 b/cyc):",
            b.name(),
            args.backend
        );
        let speedups = sweep
            .speedups_vs(128)
            .ok_or("128 b/cyc baseline missing from the sweep")?;
        for (bw, s) in speedups {
            println!("  {bw:>4} bits/cycle: {s:5.2}x");
        }
        return Ok(());
    }
    let batches = [1, 4, 16, 64, 256];
    let sweep = if event {
        batch_sweep_with(&EventBackend, &arch, &b.model(), &batches)
    } else {
        batch_sweep_with(&AnalyticBackend, &arch, &b.model(), &batches)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "{} batch sweep (per-input speedup vs batch 1, {} backend):",
        b.name(),
        args.backend
    );
    let speedups = sweep
        .per_input_speedups_vs(1)
        .ok_or("batch-1 baseline missing from the sweep")?;
    for (batch, s) in speedups {
        println!("  batch {batch:>3}: {s:5.2}x");
    }
    Ok(())
}

/// Parses a comma-separated candidate list.
fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, _> = value.split(',').map(str::parse).collect();
    match items {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(format!("{flag} needs a comma-separated list, got `{value}`")),
    }
}

/// Arguments of the `dse` subcommand (its lists need their own parser).
struct DseArgs {
    rows: Vec<usize>,
    cols: Vec<usize>,
    ibuf_kb: Vec<usize>,
    wbuf_kb: Vec<usize>,
    obuf_kb: Vec<usize>,
    bandwidth: Vec<u32>,
    batches: Vec<u64>,
    networks: Vec<Benchmark>,
    workers: usize,
    backend: String,
    json: bool,
}

fn parse_dse_args(argv: &[String]) -> Result<DseArgs, String> {
    let base = ArchConfig::isca_45nm();
    let mut args = DseArgs {
        rows: vec![16, 32],
        cols: vec![8, 16],
        ibuf_kb: vec![base.ibuf_bytes / 1024],
        wbuf_kb: vec![base.wbuf_bytes / 1024],
        obuf_kb: vec![base.obuf_bytes / 1024],
        bandwidth: vec![64, 128, 256],
        batches: vec![16],
        networks: Benchmark::ALL.to_vec(),
        workers: 0,
        backend: "analytic".into(),
        json: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let value = || {
            it.clone()
                .next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--rows" => args.rows = parse_list(flag, &value()?)?,
            "--cols" => args.cols = parse_list(flag, &value()?)?,
            "--ibuf-kb" => args.ibuf_kb = parse_list(flag, &value()?)?,
            "--wbuf-kb" => args.wbuf_kb = parse_list(flag, &value()?)?,
            "--obuf-kb" => args.obuf_kb = parse_list(flag, &value()?)?,
            "--bandwidth" => args.bandwidth = parse_list(flag, &value()?)?,
            "--batch" => args.batches = parse_list(flag, &value()?)?,
            "--workers" => {
                args.workers = value()?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?
            }
            "--backend" => args.backend = value()?,
            "--networks" => {
                let v = value()?;
                if v != "all" {
                    args.networks = v
                        .split(',')
                        .map(|name| {
                            find_benchmark(name)
                                .ok_or_else(|| format!("unknown benchmark `{name}`"))
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            "--json" => {
                args.json = true;
                continue; // no value to consume
            }
            other => return Err(format!("unknown dse flag {other}\n\n{}", usage())),
        }
        it.next(); // consume the value every remaining arm peeked

    }
    if !matches!(args.backend.as_str(), "analytic" | "event") {
        return Err(format!("unknown backend `{}` (analytic|event)", args.backend));
    }
    Ok(args)
}

fn dse_explore(spec: &DseSpec, backend: &str, workers: usize) -> DseResult {
    match backend {
        "event" => explore(spec, &EventBackend, workers),
        _ => explore(spec, &AnalyticBackend, workers),
    }
}

/// Emits the frontier as a JSON document (hand-rolled: the build is
/// offline, no serde).
fn dse_json(result: &DseResult, grid_points: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"backend\": \"{}\",\n", result.backend));
    out.push_str(&format!("  \"grid_points\": {grid_points},\n"));
    out.push_str(&format!("  \"points\": {},\n", result.points.len()));
    out.push_str(&format!("  \"infeasible\": {},\n", result.infeasible.len()));
    out.push_str(&format!(
        "  \"compile\": {{ \"hits\": {}, \"misses\": {} }},\n",
        result.compile_hits, result.compile_misses
    ));
    out.push_str("  \"frontier\": [\n");
    let frontier = result.pareto_frontier();
    for (i, s) in frontier.iter().enumerate() {
        let a = &s.arch;
        out.push_str(&format!(
            "    {{ \"rows\": {}, \"cols\": {}, \"ibuf_kb\": {}, \"wbuf_kb\": {}, \
             \"obuf_kb\": {}, \"bandwidth_bits_per_cycle\": {}, \"cycles\": {}, \
             \"energy_pj\": {:.1}, \"area_mm2\": {:.3}, \"bandwidth_starved\": {}, \
             \"compute_starved\": {} }}{}\n",
            a.rows,
            a.cols,
            a.ibuf_bytes / 1024,
            a.wbuf_bytes / 1024,
            a.obuf_bytes / 1024,
            a.dram_bits_per_cycle,
            s.total_cycles,
            s.total_energy_pj,
            s.area_mm2,
            s.stalls.bandwidth_starved,
            s.stalls.compute_starved,
            if i + 1 == frontier.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}");
    out
}

fn cmd_dse(argv: &[String]) -> Result<(), String> {
    let args = parse_dse_args(argv)?;
    let grid = ArchGrid {
        rows: args.rows,
        cols: args.cols,
        ibuf_bytes: args.ibuf_kb.iter().map(|kb| kb * 1024).collect(),
        wbuf_bytes: args.wbuf_kb.iter().map(|kb| kb * 1024).collect(),
        obuf_bytes: args.obuf_kb.iter().map(|kb| kb * 1024).collect(),
        dram_bits_per_cycle: args.bandwidth,
        ..ArchGrid::from_base(ArchConfig::isca_45nm())
    };
    let grid_points = grid.len();
    let spec = DseSpec {
        grid,
        models: args.networks.iter().map(|b| b.model()).collect(),
        batches: args.batches,
        options: Default::default(),
    };
    if spec.is_empty() {
        return Err("empty design space (a dimension has no candidates)".into());
    }
    let result = dse_explore(&spec, &args.backend, args.workers);
    if args.json {
        println!("{}", dse_json(&result, grid_points));
        return Ok(());
    }
    println!(
        "design space: {grid_points} architectures x {} networks x {} batch sizes = {} points ({} backend)",
        spec.models.len(),
        spec.batches.len(),
        spec.len(),
        result.backend
    );
    println!(
        "evaluated {} points ({} infeasible); compile cache: {} unique compilations, {} points served from cache",
        result.points.len(),
        result.infeasible.len(),
        result.compile_misses,
        result.compile_hits
    );
    let frontier = result.pareto_frontier();
    println!("\nPareto frontier over (cycles, energy, area), {} of {} architectures:", frontier.len(), grid_points);
    println!(
        "  {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} | {:>14} {:>11} {:>9} {:>8}",
        "rows", "cols", "ibuf", "wbuf", "obuf", "bw", "cycles", "energy(mJ)", "area(mm2)", "bw-stall"
    );
    for s in &frontier {
        let a = &s.arch;
        let total_stall = s.stalls.bandwidth_starved + s.stalls.compute_starved;
        let bw_frac = if total_stall == 0 {
            0.0
        } else {
            s.stalls.bandwidth_starved as f64 / total_stall as f64
        };
        println!(
            "  {:>4} {:>4} {:>4}K {:>4}K {:>4}K {:>5} | {:>14} {:>11.2} {:>9.2} {:>7.0}%",
            a.rows,
            a.cols,
            a.ibuf_bytes / 1024,
            a.wbuf_bytes / 1024,
            a.obuf_bytes / 1024,
            a.dram_bits_per_cycle,
            s.total_cycles,
            s.total_energy_pj / 1e9,
            s.area_mm2,
            bw_frac * 100.0
        );
    }
    if !result.infeasible.is_empty() {
        let show = result.infeasible.len().min(3);
        println!("\ninfeasible corners (first {show}):");
        for p in result.infeasible.iter().take(show) {
            println!("  {} @ {}: {}", p.model_name, p.arch, p.error);
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(usage().to_string());
    }
    let command = argv[0].clone();
    if command == "dse" {
        // The grid flags take comma-separated lists: dedicated parser.
        return cmd_dse(&argv[1..]);
    }
    let args = parse_args(&argv[1..])?;
    if command == "list" {
        cmd_list();
        return Ok(());
    }
    let bench_name = args
        .positional
        .first()
        .ok_or_else(|| format!("`{command}` needs a benchmark name\n\n{}", usage()))?;
    let b = find_benchmark(bench_name)
        .ok_or_else(|| format!("unknown benchmark `{bench_name}`\n\n{}", usage()))?;
    match command.as_str() {
        "report" => cmd_report(b, &args),
        "compare" => cmd_compare(b, &args),
        "asm" => cmd_asm(b, &args),
        "sweep" => cmd_sweep(b, &args),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
