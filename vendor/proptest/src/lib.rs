//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this in-tree shim
//! provides the slice of proptest's 1.x API that the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! integer-range and tuple strategies, `prop::sample::select`,
//! `prop::collection::vec`, `prop::option::of`, [`any`], the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), and the `prop_assert*` macros.
//!
//! Differences from real proptest: generation is a deterministic splitmix64
//! stream seeded from the test name (reproducible across runs), and there is
//! no shrinking — a failing case reports its index and panics.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a stream from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive), `lo <= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform value in `[lo, hi]` (inclusive), `lo <= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi as i128 - lo as i128) as u128;
        if span == u64::MAX as u128 {
            return self.next_u64() as i64;
        }
        (lo as i128 + (self.next_u64() as u128 % (span + 1)) as i128) as i64
    }
}

/// Error returned (via the `prop_assert*` macros) from a failing case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among equally-weighted strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from the (non-empty) list of choices.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range_u64(0, self.choices.len() as u64 - 1) as usize;
        self.choices[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.$via(self.start as _, (self.end - 1) as _) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.$via(*self.start() as _, *self.end() as _) as $t
            }
        }
    )+};
}

int_range_strategy!(
    i8 => range_i64,
    i16 => range_i64,
    i32 => range_i64,
    i64 => range_i64,
    isize => range_i64,
    u8 => range_u64,
    u16 => range_u64,
    u32 => range_u64,
    u64 => range_u64,
    usize => range_u64,
);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
);

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-range strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Combinator modules mirroring `proptest::prop`.
pub mod prop {
    /// Choosing among concrete values.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy over a fixed list of values (see [`select`]).
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.range_u64(0, self.0.len() as u64 - 1) as usize;
                self.0[i].clone()
            }
        }

        /// Uniformly select one of the given values.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select() needs at least one value");
            Select(values)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Inclusive bounds on a generated collection's length.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy for vectors with lengths in a [`SizeRange`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec` of values from `element` with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<T>` (see [`of`]).
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Some with probability 3/4, like proptest's default weighting.
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// `None` or `Some(value)` with `value` drawn from `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<i32>(), 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`: {}\n  both: `{:?}`",
                format!($($fmt)+),
                left
            )));
        }
    }};
}
