//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this in-tree shim
//! provides the slice of criterion's 0.5 API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a simple min-of-N wall-clock
//! measurement; passing `--test` (as `cargo bench -- --test` does) runs each
//! benchmark body exactly once as a smoke test.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}


impl Criterion {
    /// Build from the process arguments, honoring `--test` and a name filter.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }

    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.enabled(id) {
            let mut b = Bencher { test_mode: self.test_mode, measured: None };
            f(&mut b);
            b.report(id, self.test_mode);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Benchmark a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.enabled(&full) {
            let mut b = Bencher {
                test_mode: self.criterion.test_mode,
                measured: None,
            };
            f(&mut b, input);
            b.report(&full, self.criterion.test_mode);
        }
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    test_mode: bool,
    measured: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the fastest observed iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up once, then take the minimum over a short fixed budget.
        black_box(routine());
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        let mut best: Option<Duration> = None;
        let mut iters = 0u32;
        while started.elapsed() < budget && iters < 10_000 {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            if best.is_none_or(|b| dt < b) {
                best = Some(dt);
            }
            iters += 1;
        }
        self.measured = best;
    }

    fn report(&self, id: &str, test_mode: bool) {
        if test_mode {
            println!("{id}: ok (smoke)");
        } else if let Some(best) = self.measured {
            println!("{id}: {:.1} ns/iter (min)", best.as_nanos() as f64);
        } else {
            println!("{id}: no measurement (Bencher::iter never called)");
        }
    }
}

/// Group benchmark functions under one callable, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}
